// The resolved machine model — the output of semantic analysis over a
// parsed machine description, and the paper's Fig. 5 "data base" that the
// simulation compiler generator works from.
//
// The model owns: resources (registers, memories, program counter,
// pipeline), and the operation DAG. Operations reference each other through
// GROUP (alternatives) and INSTANCE (fixed) child slots; terminal coding
// fields are LABELs; REFERENCEs resolve upward through the decode tree.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "behavior/ir.hpp"
#include "lisa/ast.hpp"
#include "support/interner.hpp"
#include "support/value.hpp"

namespace lisasim {

using ResourceId = std::int32_t;
using OperationId = std::int32_t;

struct Resource {
  ResourceId id = -1;
  ast::ResourceKind kind = ast::ResourceKind::kScalar;
  ValueType type;
  std::string name;
  StringId name_id = 0;
  std::uint64_t size = 1;  // element count (1 for scalars)

  bool is_array() const {
    return kind == ast::ResourceKind::kRegisterFile ||
           kind == ast::ResourceKind::kMemory;
  }
};

struct PipelineInfo {
  std::string name;
  std::vector<std::string> stages;

  int stage_index(std::string_view stage) const {
    for (std::size_t i = 0; i < stages.size(); ++i)
      if (stages[i] == stage) return static_cast<int>(i);
    return -1;
  }
  int depth() const { return static_cast<int>(stages.size()); }
};

/// A terminal coding field (LABEL) of an operation.
struct LabelDecl {
  std::string name;
  StringId name_id = 0;
  unsigned width = 0;  // filled from the CODING section that binds it
};

/// A GROUP or INSTANCE child slot of an operation.
struct ChildDecl {
  std::string name;
  StringId name_id = 0;
  bool is_group = false;
  std::vector<OperationId> alternatives;  // 1 entry for INSTANCE
  bool in_coding = false;  // bound by the CODING section (decoded) vs
                           // activation-only (shares parent's bindings)
};

/// A REFERENCE declaration: the name resolves against enclosing operations
/// in the decode tree at specialization/evaluation time.
struct RefDecl {
  std::string name;
  StringId name_id = 0;
};

/// Resolved element of a CODING section, most-significant-first.
struct CodingElem {
  enum class Kind : std::uint8_t { kBits, kField, kRef };
  Kind kind = Kind::kBits;
  std::uint64_t bits = 0;   // kBits
  unsigned width = 0;       // kBits / kField (kRef width = child coding width)
  std::int32_t slot = -1;   // kField: label slot; kRef: child slot
};

/// Resolved element of a SYNTAX section.
struct SyntaxElem {
  enum class Kind : std::uint8_t { kLiteral, kField, kChild };
  Kind kind = Kind::kLiteral;
  std::string text;        // kLiteral
  std::int32_t slot = -1;  // kField: label slot; kChild: child slot
  bool field_signed = false;  // kField: print/parse as signed value
};

/// One (possibly conditional) item of an operation body. Coding-time IF and
/// SWITCH nodes keep their structure; the simulation compiler resolves them
/// per decoded instruction (specialization), while the interpretive
/// simulator evaluates the conditions at run time.
struct OpItem;
using OpItemPtr = std::unique_ptr<OpItem>;

struct OpItem {
  enum class Kind : std::uint8_t {
    kBehavior,
    kActivation,
    kExpression,
    kIf,
    kSwitch,
  };
  struct Case {
    bool is_default = false;
    ExprPtr match;  // null for default
    std::vector<OpItemPtr> items;
  };

  Kind kind = Kind::kBehavior;
  std::vector<StmtPtr> stmts;                  // kBehavior
  std::vector<std::int32_t> activation_slots;  // kActivation: child slots
  ExprPtr expr;                                // kExpression
  ExprPtr cond;                                // kIf condition / kSwitch subject
  std::vector<OpItemPtr> then_items;           // kIf
  std::vector<OpItemPtr> else_items;           // kIf
  std::vector<Case> cases;                     // kSwitch
};

struct Operation {
  OperationId id = -1;
  std::string name;
  StringId name_id = 0;
  int stage = -1;  // pipeline stage index, -1 = unstaged (runs with parent)

  std::vector<LabelDecl> labels;
  std::vector<ChildDecl> children;
  std::vector<RefDecl> references;

  std::vector<CodingElem> coding;  // empty if the operation has no CODING
  bool has_coding = false;
  unsigned coding_width = 0;

  std::vector<SyntaxElem> syntax;
  bool has_syntax = false;

  std::vector<OpItemPtr> items;
  bool has_behavior = false;    // any BEHAVIOR, incl. inside conditionals
  bool has_expression = false;  // any EXPRESSION, incl. inside conditionals
  int num_locals = 0;           // local-variable slots used by behaviors

  int label_slot(StringId name_id) const {
    for (std::size_t i = 0; i < labels.size(); ++i)
      if (labels[i].name_id == name_id) return static_cast<int>(i);
    return -1;
  }
  int child_slot(StringId name_id) const {
    for (std::size_t i = 0; i < children.size(); ++i)
      if (children[i].name_id == name_id) return static_cast<int>(i);
    return -1;
  }
};

/// Severity of a SimError: fatal errors indicate a malformed program or a
/// broken invariant (the simulation cannot meaningfully continue), while
/// recoverable errors are guarded-execution stops (watchdog limits) from
/// which the caller may resume — e.g. by restoring a checkpoint or raising
/// the limit and calling run() again.
enum class SimErrorKind : std::uint8_t { kFatal, kRecoverable };

/// Structured context attached to a SimError. Fields are best-effort: the
/// throw site fills what it knows (has_pc/has_cycle gate the numeric
/// fields; `level` is a SimLevel cast to int, -1 when unknown; `resource`
/// names the resource involved in an access error, empty otherwise).
struct SimErrorContext {
  std::uint64_t pc = 0;
  std::uint64_t cycle = 0;
  int level = -1;
  std::string resource;
  bool has_pc = false;
  bool has_cycle = false;
};

/// Exception for malformed target programs and internal simulation errors
/// (out-of-bounds access, decode failure at run time, ...), and — with
/// kind() == kRecoverable — for guarded-execution stops such as watchdog
/// limits.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
  SimError(const std::string& message, SimErrorKind kind,
           SimErrorContext context = {})
      : std::runtime_error(message),
        kind_(kind),
        context_(std::move(context)) {}

  SimErrorKind kind() const { return kind_; }
  bool recoverable() const { return kind_ == SimErrorKind::kRecoverable; }
  const SimErrorContext& context() const { return context_; }

 private:
  SimErrorKind kind_ = SimErrorKind::kFatal;
  SimErrorContext context_;
};

class Model {
 public:
  std::string name = "machine";
  ast::FetchSpec fetch;
  PipelineInfo pipeline;
  std::vector<Resource> resources;
  std::vector<std::unique_ptr<Operation>> operations;

  OperationId root = -1;          // the operation named "instruction"
  ResourceId pc = -1;             // the PROGRAM_COUNTER resource
  ResourceId fetch_memory = -1;   // memory holding instruction words

  StringInterner& interner() { return interner_; }
  const StringInterner& interner() const { return interner_; }

  const Resource* resource_by_name(std::string_view name) const {
    for (const auto& r : resources)
      if (r.name == name) return &r;
    return nullptr;
  }
  const Operation* operation_by_name(std::string_view name) const {
    for (const auto& op : operations)
      if (op->name == name) return op.get();
    return nullptr;
  }
  const Operation& op(OperationId id) const { return *operations[static_cast<std::size_t>(id)]; }
  const Resource& resource(ResourceId id) const {
    return resources[static_cast<std::size_t>(id)];
  }

 private:
  // Mutable so const Model& users (decoder, simulators) can intern lookup
  // strings; interning is logically a cache.
  mutable StringInterner interner_;
};

}  // namespace lisasim
