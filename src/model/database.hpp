// The model data base of the tool flow (paper Fig. 5): the LISA compiler
// stores the analyzed model; the simulation-compiler generator loads it.
// The storage format is canonical machine-description source — dumping and
// reloading through the regular front end guarantees the data base can
// express exactly what the language can, and makes it human-auditable.
#pragma once

#include <memory>
#include <string>

#include "model/model.hpp"
#include "support/diag.hpp"

namespace lisasim {

/// Serialize a model to canonical machine-description source.
std::string dump_model(const Model& model);

/// Load a model previously stored with dump_model. Returns nullptr and
/// reports diagnostics on malformed input.
std::unique_ptr<Model> load_model(std::string_view text,
                                  DiagnosticEngine& diags);

/// Write `dump_model(model)` to a file. Throws SimError on I/O failure.
void save_model_to_file(const Model& model, const std::string& path);

/// Read + load a model data base from a file. Throws SimError on failure.
std::unique_ptr<Model> load_model_from_file(const std::string& path);

}  // namespace lisasim
