// Model validation (lint): static checks beyond what semantic analysis
// enforces. Sema rejects ill-formed models; the validator flags models that
// are well-formed but suspicious — ambiguous codings, unreachable
// operations, activation anomalies — the classes of mistake that cost the
// most debugging time when writing a new machine description.
#pragma once

#include <vector>

#include "model/model.hpp"
#include "support/diag.hpp"

namespace lisasim {

/// Run all validations, reporting warnings/notes into `diags` (the
/// validator never reports errors: a validated model already passed sema).
/// Returns the number of findings.
std::size_t validate_model(const Model& model, DiagnosticEngine& diags);

}  // namespace lisasim
