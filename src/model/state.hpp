// ProcessorState: storage for all declared resources of a model. Both
// simulators (interpretive and compiled) operate on this state; equality of
// final states across simulators is the paper's "no loss in accuracy" claim.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace lisasim {

/// Memory-mapped I/O hook: the co-simulation bridge of the paper's future
/// work ("integration of software simulators into HW/SW co-simulation
/// environments"). A hook observes/overrides accesses to a region of a
/// memory resource; because the hook sits in ProcessorState, it fires
/// identically at every simulation level (generated standalone C++
/// simulators are the exception — they have no host callbacks).
class MemoryHook {
 public:
  virtual ~MemoryHook() = default;
  /// Called on a read of a hooked element; `stored` is the value in the
  /// backing storage. The returned value is what the program sees.
  virtual std::int64_t on_read(std::uint64_t /*index*/, std::int64_t stored) {
    return stored;
  }
  /// Called on a write of a hooked element, after canonicalization; the
  /// value is also stored in the backing storage.
  virtual void on_write(std::uint64_t index, std::int64_t value) {
    (void)index;
    (void)value;
  }
};

class ProcessorState {
 public:
  explicit ProcessorState(const Model& model);

  /// Read element `index` of a resource (index 0 for scalars). Values are
  /// stored canonicalized, so reads are a plain load. The per-resource
  /// `hooked_` byte keeps unhooked resources (the vast majority even when
  /// hooks exist — registers and data memory during a guarded run) at one
  /// predictable extra branch.
  std::int64_t read(ResourceId id, std::uint64_t index = 0) const {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    if (index >= cell.size) throw_out_of_bounds(id, index);
    if (hooked_[static_cast<std::size_t>(id)]) [[unlikely]] {
      if (MemoryHook* hook = find_hook(id, index))
        return hook->on_read(index, storage_[cell.offset + index]);
    }
    return storage_[cell.offset + index];
  }

  /// Write element `index` of a resource; the value is canonicalized to the
  /// resource element type (two's-complement wrap).
  void write(ResourceId id, std::uint64_t index, std::int64_t value) {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    if (index >= cell.size) throw_out_of_bounds(id, index);
    const std::int64_t canonical = cell.type.canonicalize(value);
    storage_[cell.offset + index] = canonical;
    if (hooked_[static_cast<std::size_t>(id)]) [[unlikely]] {
      if (MemoryHook* hook = find_hook(id, index))
        hook->on_write(index, canonical);
    }
  }

  /// Read a scalar resource without the bounds/hook checks. The compiled
  /// micro-op optimizer (behavior/regcache.cpp) emits kReadScal only for
  /// non-array resources, which map_hook() refuses to hook — so a scalar
  /// read is always the plain canonicalized load.
  std::int64_t read_scalar(ResourceId id) const {
    return storage_[cells_[static_cast<std::size_t>(id)].offset];
  }

  /// Write a scalar resource (canonicalizing) without the bounds/hook
  /// checks; returns the stored canonical value so fused writes can forward
  /// it to later reads. Same soundness argument as read_scalar.
  std::int64_t write_scalar(ResourceId id, std::int64_t value) {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    const std::int64_t canonical = cell.type.canonicalize(value);
    storage_[cell.offset] = canonical;
    return canonical;
  }

  /// Map `hook` over elements [begin, end) of resource `id`. The hook is
  /// not owned and must outlive the state (or be unmapped first). Multiple
  /// regions may be hooked; overlapping regions resolve to the first
  /// registered. Registrations survive reset() — only values are cleared.
  /// Only array resources (register files, memories) can be hooked: the
  /// optimizer compiles scalar accesses to hook-free fast paths, so a
  /// scalar hook would fire at some simulation levels and not others.
  void map_hook(ResourceId id, std::uint64_t begin, std::uint64_t end,
                MemoryHook* hook) {
    if (!model_->resources[static_cast<std::size_t>(id)].is_array())
      throw SimError("map_hook: resource '" +
                     model_->resources[static_cast<std::size_t>(id)].name +
                     "' is scalar; hooks are only supported on array "
                     "resources (register files, memories)");
    hooks_.push_back({id, begin, end, hook});
    hooked_[static_cast<std::size_t>(id)] = 1;
  }

  /// Remove every region registered for `hook` (inverse of map_hook).
  /// Unknown hooks are a no-op.
  void unmap_hook(const MemoryHook* hook) {
    std::erase_if(hooks_, [hook](const HookRegion& region) {
      return region.hook == hook;
    });
    hooked_.assign(hooked_.size(), 0);
    for (const HookRegion& region : hooks_)
      hooked_[static_cast<std::size_t>(region.resource)] = 1;
  }

  /// Number of registered hook regions (tests and diagnostics).
  std::size_t hook_count() const { return hooks_.size(); }

  /// Raw snapshot of every resource element (checkpointing). The snapshot
  /// is valid for any state built from the same model.
  std::vector<std::int64_t> save_storage() const { return storage_; }

  /// Restore a snapshot taken with save_storage(). Bypasses hooks: a
  /// checkpoint restore is not an architectural write, so MMIO bridges and
  /// guards do not observe it (guarded simulators re-stale their tables
  /// separately). Throws SimError on a size mismatch (snapshot from a
  /// different model).
  void restore_storage(const std::vector<std::int64_t>& snapshot);

  // PC is a scalar resource (never hookable), so the fetch loop takes the
  // scalar fast path every cycle.
  std::uint64_t pc() const {
    return static_cast<std::uint64_t>(read_scalar(model_->pc));
  }
  void set_pc(std::uint64_t value) {
    write_scalar(model_->pc, static_cast<std::int64_t>(value));
  }

  /// Zero every resource.
  void reset();

  const Model& model() const { return *model_; }

  /// Element count of a resource in this state.
  std::uint64_t size_of(ResourceId id) const {
    return cells_[static_cast<std::size_t>(id)].size;
  }

  /// Read-only view of an array resource's elements (canonicalized values).
  /// Used by the fetch unit to decode instruction words in place.
  std::span<const std::int64_t> array_view(ResourceId id) const {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    return std::span<const std::int64_t>(storage_).subspan(cell.offset,
                                                           cell.size);
  }

  bool operator==(const ProcessorState& other) const {
    return storage_ == other.storage_;
  }

  /// Human-readable dump of all non-zero resource elements (debugging and
  /// golden-state tests).
  std::string dump_nonzero() const;

 private:
  struct Cell {
    std::size_t offset = 0;
    std::uint64_t size = 1;
    ValueType type;
  };

  struct HookRegion {
    ResourceId resource = -1;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    MemoryHook* hook = nullptr;
  };

  MemoryHook* find_hook(ResourceId id, std::uint64_t index) const {
    for (const auto& region : hooks_)
      if (region.resource == id && index >= region.begin &&
          index < region.end)
        return region.hook;
    return nullptr;
  }

  [[noreturn]] void throw_out_of_bounds(ResourceId id,
                                        std::uint64_t index) const;

  const Model* model_;
  std::vector<Cell> cells_;        // indexed by ResourceId
  std::vector<std::int64_t> storage_;  // all elements, contiguous
  std::vector<HookRegion> hooks_;
  std::vector<std::uint8_t> hooked_;  // by ResourceId: any region mapped
};

}  // namespace lisasim
