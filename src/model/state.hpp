// ProcessorState: storage for all declared resources of a model. Both
// simulators (interpretive and compiled) operate on this state; equality of
// final states across simulators is the paper's "no loss in accuracy" claim.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace lisasim {

/// Memory-mapped I/O hook: the co-simulation bridge of the paper's future
/// work ("integration of software simulators into HW/SW co-simulation
/// environments"). A hook observes/overrides accesses to a region of a
/// memory resource; because the hook sits in ProcessorState, it fires
/// identically at every simulation level (generated standalone C++
/// simulators are the exception — they have no host callbacks).
class MemoryHook {
 public:
  virtual ~MemoryHook() = default;
  /// Called on a read of a hooked element; `stored` is the value in the
  /// backing storage. The returned value is what the program sees.
  virtual std::int64_t on_read(std::uint64_t /*index*/, std::int64_t stored) {
    return stored;
  }
  /// Called on a write of a hooked element, after canonicalization; the
  /// value is also stored in the backing storage.
  virtual void on_write(std::uint64_t index, std::int64_t value) {
    (void)index;
    (void)value;
  }
};

class ProcessorState {
 public:
  explicit ProcessorState(const Model& model);

  // States are views over their element storage (data_/stride_), so copying
  // would alias two states onto one buffer; moves keep the heap buffer (and
  // any external binding) valid.
  ProcessorState(const ProcessorState&) = delete;
  ProcessorState& operator=(const ProcessorState&) = delete;
  ProcessorState(ProcessorState&&) = default;
  ProcessorState& operator=(ProcessorState&&) = default;

  /// Rebind this state to external lane-interleaved storage: flat element
  /// position `p` lives at `base[p * stride]`. The batched engine lays N
  /// lanes out structure-of-arrays in one shared buffer (lane `l` of a
  /// batch binds `buf + l` with stride N), so the same element of every
  /// lane is contiguous and the lane-innermost micro-op loop vectorizes.
  /// With stride 1 the layout is exactly the default owned one. `base`
  /// must stay valid for the life of the binding and provide
  /// `total_elements() * stride` elements.
  void bind_lanes(std::int64_t* base, std::size_t stride) {
    data_ = base;
    stride_ = stride;
  }

  /// Read element `index` of a resource (index 0 for scalars). Values are
  /// stored canonicalized, so reads are a plain load. The per-resource
  /// `hooked_` byte keeps unhooked resources (the vast majority even when
  /// hooks exist — registers and data memory during a guarded run) at one
  /// predictable extra branch.
  std::int64_t read(ResourceId id, std::uint64_t index = 0) const {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    if (index >= cell.size) throw_out_of_bounds(id, index);
    if (hooked_[static_cast<std::size_t>(id)]) [[unlikely]] {
      if (MemoryHook* hook = find_hook(id, index))
        return hook->on_read(index, data_[(cell.offset + index) * stride_]);
    }
    return data_[(cell.offset + index) * stride_];
  }

  /// Write element `index` of a resource; the value is canonicalized to the
  /// resource element type (two's-complement wrap).
  void write(ResourceId id, std::uint64_t index, std::int64_t value) {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    if (index >= cell.size) throw_out_of_bounds(id, index);
    const std::int64_t canonical = cell.type.canonicalize(value);
    data_[(cell.offset + index) * stride_] = canonical;
    if (hooked_[static_cast<std::size_t>(id)]) [[unlikely]] {
      if (MemoryHook* hook = find_hook(id, index))
        hook->on_write(index, canonical);
    }
  }

  /// Read a scalar resource without the bounds/hook checks. The compiled
  /// micro-op optimizer (behavior/regcache.cpp) emits kReadScal only for
  /// non-array resources, which map_hook() refuses to hook — so a scalar
  /// read is always the plain canonicalized load.
  std::int64_t read_scalar(ResourceId id) const {
    return data_[cells_[static_cast<std::size_t>(id)].offset * stride_];
  }

  /// Write a scalar resource (canonicalizing) without the bounds/hook
  /// checks; returns the stored canonical value so fused writes can forward
  /// it to later reads. Same soundness argument as read_scalar.
  std::int64_t write_scalar(ResourceId id, std::int64_t value) {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    const std::int64_t canonical = cell.type.canonicalize(value);
    data_[cell.offset * stride_] = canonical;
    return canonical;
  }

  /// Map `hook` over elements [begin, end) of resource `id`. The hook is
  /// not owned and must outlive the state (or be unmapped first). Multiple
  /// regions may be hooked; overlapping regions resolve to the first
  /// registered. Registrations survive reset() — only values are cleared.
  /// Only array resources (register files, memories) can be hooked: the
  /// optimizer compiles scalar accesses to hook-free fast paths, so a
  /// scalar hook would fire at some simulation levels and not others.
  void map_hook(ResourceId id, std::uint64_t begin, std::uint64_t end,
                MemoryHook* hook) {
    if (!model_->resources[static_cast<std::size_t>(id)].is_array())
      throw SimError("map_hook: resource '" +
                     model_->resources[static_cast<std::size_t>(id)].name +
                     "' is scalar; hooks are only supported on array "
                     "resources (register files, memories)");
    hooks_.push_back({id, begin, end, hook});
    hooked_[static_cast<std::size_t>(id)] = 1;
  }

  /// Remove every region registered for `hook` (inverse of map_hook).
  /// Unknown hooks are a no-op.
  void unmap_hook(const MemoryHook* hook) {
    std::erase_if(hooks_, [hook](const HookRegion& region) {
      return region.hook == hook;
    });
    hooked_.assign(hooked_.size(), 0);
    for (const HookRegion& region : hooks_)
      hooked_[static_cast<std::size_t>(region.resource)] = 1;
  }

  /// Number of registered hook regions (tests and diagnostics).
  std::size_t hook_count() const { return hooks_.size(); }

  /// Raw snapshot of every resource element (checkpointing). The snapshot
  /// is valid for any state built from the same model, regardless of lane
  /// binding: a strided lane view gathers into the same flat layout the
  /// default state stores, so batched-lane checkpoints interchange with
  /// sequential ones.
  std::vector<std::int64_t> save_storage() const {
    if (stride_ == 1)
      return std::vector<std::int64_t>(data_, data_ + total_);
    std::vector<std::int64_t> out(total_);
    for (std::size_t i = 0; i < total_; ++i) out[i] = data_[i * stride_];
    return out;
  }

  /// Restore a snapshot taken with save_storage(). Bypasses hooks: a
  /// checkpoint restore is not an architectural write, so MMIO bridges and
  /// guards do not observe it (guarded simulators re-stale their tables
  /// separately). Throws SimError on a size mismatch (snapshot from a
  /// different model).
  void restore_storage(const std::vector<std::int64_t>& snapshot);

  // PC is a scalar resource (never hookable), so the fetch loop takes the
  // scalar fast path every cycle.
  std::uint64_t pc() const {
    return static_cast<std::uint64_t>(read_scalar(model_->pc));
  }
  void set_pc(std::uint64_t value) {
    write_scalar(model_->pc, static_cast<std::int64_t>(value));
  }

  /// Zero every resource.
  void reset();

  const Model& model() const { return *model_; }

  /// Element count of a resource in this state.
  std::uint64_t size_of(ResourceId id) const {
    return cells_[static_cast<std::size_t>(id)].size;
  }

  /// Read-only view of an array resource's elements (canonicalized values).
  /// Used by the fetch unit to decode instruction words in place. A strided
  /// lane view gathers into a per-state scratch buffer (cold paths only —
  /// guarded recompiles and tree-walk fallbacks); the span is valid until
  /// the next array_view call on this state.
  std::span<const std::int64_t> array_view(ResourceId id) const {
    const Cell& cell = cells_[static_cast<std::size_t>(id)];
    if (stride_ == 1)
      return std::span<const std::int64_t>(data_ + cell.offset, cell.size);
    view_scratch_.resize(cell.size);
    for (std::uint64_t i = 0; i < cell.size; ++i)
      view_scratch_[i] = data_[(cell.offset + i) * stride_];
    return std::span<const std::int64_t>(view_scratch_);
  }

  bool operator==(const ProcessorState& other) const {
    if (total_ != other.total_) return false;
    for (std::size_t i = 0; i < total_; ++i)
      if (data_[i * stride_] != other.data_[i * other.stride_]) return false;
    return true;
  }

  /// Flat element count across all resources (the length of a
  /// save_storage() snapshot; the per-lane extent of a batched buffer).
  std::size_t total_elements() const { return total_; }

  /// Flat element offset of a resource (element `i` of `id` lives at
  /// raw_data()[(offset_of(id) + i) * stride()]). The native AOT tier bakes
  /// these offsets into generated code and validates them at .so load.
  std::size_t offset_of(ResourceId id) const {
    return cells_[static_cast<std::size_t>(id)].offset;
  }

  /// Direct access to the flat element storage. Only sound for callers that
  /// re-implement canonicalization and bounds checks exactly (the native
  /// tier); everyone else goes through read()/write().
  std::int64_t* raw_data() { return data_; }

  /// Lane stride of the element storage (1 unless bind_lanes() rebound the
  /// state); the native tier stands down for strided layouts.
  std::size_t stride() const { return stride_; }

  /// Human-readable dump of all non-zero resource elements (debugging and
  /// golden-state tests).
  std::string dump_nonzero() const;

 private:
  struct Cell {
    std::size_t offset = 0;
    std::uint64_t size = 1;
    ValueType type;
  };

  struct HookRegion {
    ResourceId resource = -1;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    MemoryHook* hook = nullptr;
  };

  MemoryHook* find_hook(ResourceId id, std::uint64_t index) const {
    for (const auto& region : hooks_)
      if (region.resource == id && index >= region.begin &&
          index < region.end)
        return region.hook;
    return nullptr;
  }

  [[noreturn]] void throw_out_of_bounds(ResourceId id,
                                        std::uint64_t index) const;

  const Model* model_;
  std::vector<Cell> cells_;  // indexed by ResourceId
  // Owned storage for the default (unbatched) layout; unused after
  // bind_lanes() points data_ at a shared lane-interleaved buffer.
  std::vector<std::int64_t> storage_;
  std::int64_t* data_ = nullptr;  // element p at data_[p * stride_]
  std::size_t stride_ = 1;
  std::size_t total_ = 0;  // flat element count (all resources)
  mutable std::vector<std::int64_t> view_scratch_;  // strided array_view
  std::vector<HookRegion> hooks_;
  std::vector<std::uint8_t> hooked_;  // by ResourceId: any region mapped
};

}  // namespace lisasim
