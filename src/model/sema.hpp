// Semantic analysis: ast::ModelAst -> Model. Together with the parser this
// forms the paper's "LISA compiler" (Fig. 5), producing the model data base
// that the simulation compiler generator consumes.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "lisa/ast.hpp"
#include "model/model.hpp"
#include "support/diag.hpp"

namespace lisasim {

/// Resolve a parsed machine description into a Model. Returns nullptr when
/// errors were reported.
std::unique_ptr<Model> analyze_model(const ast::ModelAst& ast,
                                     DiagnosticEngine& diags);

/// Front-end convenience: lex + parse + analyze a model source text.
std::unique_ptr<Model> compile_model_source(std::string_view source,
                                            std::string file,
                                            DiagnosticEngine& diags);

/// Like compile_model_source but throws SimError with the rendered
/// diagnostics on failure. Used by tools and tests that expect the model to
/// be valid.
std::unique_ptr<Model> compile_model_source_or_throw(std::string_view source,
                                                     std::string file);

}  // namespace lisasim
