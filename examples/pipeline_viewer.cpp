// Pipeline viewer: renders the classic stage-occupancy diagram (stages ×
// cycles, one column per cycle, instruction addresses in the cells) from
// engine observer events — the picture of paper Fig. 3, drawn live from a
// simulation. Works on any model; defaults to a tinydsp program that shows
// a taken branch squashing the wrong path and a multi-cycle NOP stall.
//
// Usage: ./examples/pipeline_viewer [@model prog.asm] [max_cycles]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/disasm.hpp"
#include "model/sema.hpp"
#include "sim/interp.hpp"
#include "sim/observer.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

namespace {

/// Collects (cycle, stage, pc) execute events into a grid.
class GridObserver final : public SimObserver {
 public:
  void on_fetch(std::uint64_t, std::uint64_t) override {}
  void on_execute(std::uint64_t cycle, int stage, std::uint64_t pc) override {
    cells_[{cycle, stage}] = pc;
    last_cycle_ = std::max(last_cycle_, cycle);
  }
  void on_retire(std::uint64_t, std::uint64_t) override {}
  void on_flush(std::uint64_t cycle, int stage) override {
    flushes_.emplace_back(cycle, stage);
  }

  /// Render stages as rows, cycles as columns.
  std::string render(const Model& model) const {
    std::string out = "cycle     ";
    for (std::uint64_t c = 1; c <= last_cycle_; ++c) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "%4llu",
                    static_cast<unsigned long long>(c));
      out += buffer;
    }
    out += "\n";
    for (int s = 0; s < model.pipeline.depth(); ++s) {
      char head[16];
      std::snprintf(head, sizeof head, "%-10s",
                    model.pipeline.stages[static_cast<std::size_t>(s)]
                        .c_str());
      out += head;
      for (std::uint64_t c = 1; c <= last_cycle_; ++c) {
        auto it = cells_.find({c, s});
        if (it == cells_.end()) {
          out += "   .";
        } else {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "%4llu",
                        static_cast<unsigned long long>(it->second));
          out += buffer;
        }
      }
      out += "\n";
    }
    for (const auto& [cycle, stage] : flushes_) {
      out += "flush in cycle " + std::to_string(cycle) + " from stage " +
             model.pipeline.stages[static_cast<std::size_t>(stage)] + "\n";
    }
    return out;
  }

 private:
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> cells_;
  std::vector<std::pair<std::uint64_t, int>> flushes_;
  std::uint64_t last_cycle_ = 0;
};

constexpr const char* kDemoProgram = R"(
        MVK 3, R1
        NOP 3               ; multi-cycle stall: watch the bubble
        BZ R2, skip         ; taken (R2 == 0): flushes IF/ID
        MVK 9, R3           ; squashed
skip:   ADD.L R4, R1, R1
        HALT
)";

std::string model_source_for(const std::string& spec) {
  if (spec == "@tinydsp") return std::string(targets::tinydsp_model_source());
  if (spec == "@c62x") return std::string(targets::c62x_model_source());
  if (spec == "@c54x") return std::string(targets::c54x_model_source());
  std::ifstream in(spec);
  if (!in) throw SimError("cannot open '" + spec + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string model_spec = "@tinydsp";
    std::string program_text = kDemoProgram;
    std::uint64_t max_cycles = 40;
    if (argc >= 3) {
      model_spec = argv[1];
      std::ifstream in(argv[2]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[2]);
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      program_text = buffer.str();
    }
    if (argc >= 4) max_cycles = std::strtoull(argv[3], nullptr, 0);

    auto model =
        compile_model_source_or_throw(model_source_for(model_spec), "model");
    Decoder decoder(*model);
    const LoadedProgram program =
        assemble_or_throw(*model, decoder, program_text, "viewer.asm");

    std::printf("program:\n");
    for (std::size_t i = 0; i < program.words.size(); ++i)
      std::printf("  %3llu: %s\n",
                  static_cast<unsigned long long>(program.text_base + i),
                  disassemble_word(decoder, program.words[i]).c_str());

    GridObserver grid;
    InterpSimulator sim(*model);
    sim.set_observer(&grid);
    sim.load(program);
    const RunResult r = sim.run(max_cycles);
    std::printf("\n%s", grid.render(*model).c_str());
    std::printf("\n%llu cycles, %s\n",
                static_cast<unsigned long long>(r.cycles),
                r.halted ? "halted" : "cycle limit");
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
