// lisasim — command-line driver for the retargetable tool chain.
//
//   lisasim check   <model.lisa>                 parse + analyze + lint
//   lisasim dump    <model.lisa>                 print the model data base
//   lisasim asm     <model> <prog.asm>           assemble, print words
//   lisasim disasm  <model> <prog.asm>           assemble + disassemble
//   lisasim codegen <model> <prog.asm>           emit a standalone C++
//                                                compiled simulator
//   lisasim run     <model> <prog.asm> [options] simulate
//
// <model> is a path to a machine description, or one of the built-in
// models "@tinydsp" / "@c62x".
//
// run options:
//   --level interp|cached|dynamic|static|trace
//                                   simulation level (default static)
//   --max-cycles N                  stop after N cycles
//   --dump                          print non-zero state at the end
//   --stats                         print simulation-compile statistics
//   --trace [N]                     print the first N trace events (def 200)
//   --profile                       print the hot-spot table at the end
//   --trace-threshold N             fetches before a packet is hot enough
//                                   for superblock formation (--level trace)
//   --threads N                     simulation-compiler workers (0 = auto)
//   --cache                         serve repeated loads from the table
//                                   cache (with --runs N, reloads hit it)
//   --runs N                        load + run the program N times
//   --guard off|recompile|fallback  write-guard policy for self-modifying
//                                   code (default off)
//   --watchdog N                    recoverable error after N cycles
//                                   without the program halting
//   --max-stuck N                   recoverable error after N consecutive
//                                   cycles without a retirement (livelock)
//   --checkpoint N                  save a checkpoint at cycle N, finish,
//                                   restore and replay; verify both runs
//                                   agree bit for bit
//   --batch N                       run N lockstep lanes of the program over
//                                   structure-of-arrays state (static level
//                                   only; compiles once, replicates state).
//                                   Lanes report individually; --watchdog
//                                   retires expired lanes while the rest of
//                                   the batch keeps running
//   --poke LANE:RES[IDX]=VALUE      fan stimuli across a batch: write VALUE
//                                   into lane LANE's resource RES at IDX
//                                   after load, before the run (repeatable;
//                                   needs --batch)
//   --resilience                    run under the resilient supervisor:
//                                   recoverable errors checkpoint, retry
//                                   with bounded backoff and degrade down
//                                   the level ladder instead of killing
//                                   the run; --stats prints the recovery
//                                   log
//   --inject-fault KIND@CYCLE[xN]   schedule a deterministic fault (kinds:
//                                   memory, guard-storm, cache-evict,
//                                   cache-corrupt, compile, watchdog,
//                                   stuck; repeatable, commas allowed;
//                                   implies --resilience)
//
// The --trace/--profile observers need per-cycle events, so they disable
// hot-trace dispatch while attached (results are identical either way).
//
// exit codes: 0 success, 1 fatal simulation error, 2 usage error,
// 3 recoverable guarded-execution stop (watchdog / stuck limit).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/disasm.hpp"
#include "codegen/cppgen.hpp"
#include "model/database.hpp"
#include "model/sema.hpp"
#include "model/validate.hpp"
#include "resilience/supervisor.hpp"
#include "sim/batched.hpp"
#include "sim/cached_interp.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled.hpp"
#include "sim/guard.hpp"
#include "sim/interp.hpp"
#include "sim/observer.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SimError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string model_source(const std::string& spec) {
  if (spec == "@tinydsp") return std::string(targets::tinydsp_model_source());
  if (spec == "@c62x") return std::string(targets::c62x_model_source());
  if (spec == "@c54x") return std::string(targets::c54x_model_source());
  return read_file(spec);
}

constexpr const char kLevelNames[] =
    "interp, cached, dynamic, static, trace, native";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: lisasim <check|dump|asm|disasm|codegen|run> <model> "
               "[prog.asm] [--level interp|cached|dynamic|static|trace|"
               "native] "
               "[--max-cycles N] [--dump] [--stats] [--threads N] [--cache] "
               "[--cache-dir DIR] "
               "[--runs N] [--trace [N]] [--profile] [--trace-threshold N] "
               "[--guard off|recompile|fallback] [--watchdog N] "
               "[--max-stuck N] [--checkpoint N] [--batch N] "
               "[--poke LANE:RES[IDX]=VALUE] [--resilience] "
               "[--inject-fault KIND@CYCLE[xN]]\n"
               "       <model> is a .lisa path or @tinydsp / @c62x / @c54x\n"
               "       --level values: %s ('trace' adds hot-path\n"
               "         superblock dispatch on top of 'static'; "
               "--trace-threshold N\n"
               "         sets its hotness threshold, default 32; 'native' "
               "adds AOT-\n"
               "         compiled (dlopen) regions on top of 'trace', "
               "falling back\n"
               "         to 'trace' when no C++ toolchain is reachable)\n"
               "       --cache-dir DIR: disk-backed native artifact cache "
               "(implies\n"
               "         --cache); compiled .so regions are reused across "
               "processes\n"
               "       --batch N: N lockstep lanes over one compiled table "
               "(static\n"
               "         level only); per-lane results, worst lane outcome "
               "sets the\n"
               "         exit code; fan per-lane inputs with --poke "
               "2:dmem[0]=14\n"
               "       --resilience: supervised run — recoverable faults "
               "checkpoint,\n"
               "         retry with bounded backoff, then degrade "
               "trace->static->\n"
               "         dynamic->cached->interp; --inject-fault "
               "memory@100x2,compile@0\n"
               "         schedules deterministic faults (implies "
               "--resilience)\n"
               "       exit codes: 0 ok, 1 fatal simulation error, 2 usage "
               "error,\n"
               "         3 recoverable guarded-execution stop: a --watchdog "
               "cycle limit\n"
               "         or --max-stuck livelock limit fired; the error "
               "names the pc,\n"
               "         cycle and level, and the pipeline stays consistent, "
               "so a rerun\n"
               "         with a higher limit (or a restored --checkpoint) "
               "may continue\n",
               kLevelNames);
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// Value of a long option given as "--name value" or "--name=value";
/// nullptr when argv[i] is not `name` (advances i for the spaced form).
const char* option_value(int argc, char** argv, int& i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

/// Run once under `limits`; with `checkpoint_at` != 0, stop there, save a
/// checkpoint, finish the run, then restore and replay the tail — the two
/// executions must agree on RunResult and final state bit for bit.
template <typename Sim>
RunResult run_with_checkpoint(Sim& sim, const RunLimits& limits,
                              std::uint64_t checkpoint_at) {
  if (checkpoint_at == 0) return sim.run(limits);
  RunLimits head = limits;
  head.max_cycles = checkpoint_at;
  RunResult total = sim.run(head);
  if (total.halted) {
    std::printf("checkpoint: program halted at cycle %llu, before the "
                "checkpoint\n",
                static_cast<unsigned long long>(total.cycles));
    return total;
  }
  const EngineCheckpoint cp = sim.save_checkpoint();
  RunLimits tail = limits;
  if (limits.max_cycles != UINT64_MAX)
    tail.max_cycles = limits.max_cycles > total.cycles
                          ? limits.max_cycles - total.cycles
                          : 0;
  const RunResult first = sim.run(tail);
  const std::string first_state = sim.state().dump_nonzero();
  sim.restore_checkpoint(cp);
  const RunResult replay = sim.run(tail);
  if (!(first == replay) || sim.state().dump_nonzero() != first_state)
    throw SimError("checkpoint replay diverged from the original run");
  std::printf("checkpoint: saved at cycle %llu, replay of %llu cycles "
              "verified\n",
              static_cast<unsigned long long>(total.cycles),
              static_cast<unsigned long long>(replay.cycles));
  total.cycles += replay.cycles;
  total.packets_retired += replay.packets_retired;
  total.slots_retired += replay.slots_retired;
  total.fetches += replay.fetches;
  total.halted = replay.halted;
  return total;
}

template <typename Sim>
void print_guard_stats(const Sim& sim) {
  const GuardStats& gs = sim.guard_stats();
  std::printf("guards: %llu guarded write%s, %llu stale issue%s, "
              "%llu recompile%s, %llu fallback%s\n",
              static_cast<unsigned long long>(sim.guarded_writes()),
              sim.guarded_writes() == 1 ? "" : "s",
              static_cast<unsigned long long>(gs.stale_issues),
              gs.stale_issues == 1 ? "" : "s",
              static_cast<unsigned long long>(gs.recompiles),
              gs.recompiles == 1 ? "" : "s",
              static_cast<unsigned long long>(gs.fallbacks),
              gs.fallbacks == 1 ? "" : "s");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout);
      return 0;
    }
  }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string model_spec = argv[2];

  try {
    const std::string source = model_source(model_spec);
    DiagnosticEngine diags;
    auto model = compile_model_source(source, model_spec, diags);
    if (!model) {
      std::fputs(diags.render().c_str(), stderr);
      return 1;
    }
    if (diags.error_count() == 0 && !diags.diagnostics().empty())
      std::fputs(diags.render().c_str(), stderr);

    if (command == "check") {
      Decoder decoder(*model);
      DiagnosticEngine lint;
      const std::size_t findings = validate_model(*model, lint);
      std::fputs(lint.render().c_str(), stderr);
      std::printf("%s: OK (%zu operations, %zu with coding, %d pipeline "
                  "stages, %u-bit words, %zu lint finding%s)\n",
                  model->name.c_str(), decoder.stats().operations,
                  decoder.stats().coding_operations, model->pipeline.depth(),
                  model->fetch.word_bits, findings,
                  findings == 1 ? "" : "s");
      return 0;
    }
    if (command == "dump") {
      std::fputs(dump_model(*model).c_str(), stdout);
      return 0;
    }

    if (argc < 4) return usage();
    const std::string asm_path = argv[3];
    Decoder decoder(*model);
    DiagnosticEngine asm_diags;
    Assembler assembler(*model, decoder);
    const LoadedProgram program =
        assembler.assemble(read_file(asm_path), asm_path, asm_diags);
    if (asm_diags.has_errors()) {
      std::fputs(asm_diags.render().c_str(), stderr);
      return 1;
    }

    if (command == "asm") {
      for (std::size_t i = 0; i < program.words.size(); ++i)
        std::printf("%06llx: %0*llx\n",
                    static_cast<unsigned long long>(program.text_base + i),
                    static_cast<int>((model->fetch.word_bits + 3) / 4),
                    static_cast<unsigned long long>(program.words[i]));
      return 0;
    }
    if (command == "disasm") {
      for (std::size_t i = 0; i < program.words.size(); ++i)
        std::printf("%06llx: %s\n",
                    static_cast<unsigned long long>(program.text_base + i),
                    disassemble_word(decoder, program.words[i]).c_str());
      return 0;
    }
    if (command == "codegen") {
      std::fputs(generate_cpp_simulator(*model, program).c_str(), stdout);
      return 0;
    }
    if (command != "run") return usage();

    // Options.
    SimLevel level = SimLevel::kCompiledStatic;
    RunLimits limits;
    GuardPolicy guard = GuardPolicy::kOff;
    std::uint64_t checkpoint_at = 0;
    bool dump_state = false;
    bool show_stats = false;
    bool do_profile = false;
    bool use_cache = false;
    std::string cache_dir;  // "" = no disk-backed native artifacts
    unsigned threads = 1;
    std::uint64_t runs = 1;
    std::uint64_t trace_events = 0;
    std::uint32_t trace_threshold = 0;  // 0 = TraceConfig default
    unsigned batch_lanes = 0;           // 0 = unbatched
    struct Poke {
      unsigned lane = 0;
      std::string resource;
      std::uint64_t index = 0;
      std::int64_t value = 0;
    };
    std::vector<Poke> pokes;
    bool resilience = false;
    FaultPlan fault_plan;
    bool level_given = false;
    for (int i = 4; i < argc; ++i) {
      if (const char* value = option_value(argc, argv, i, "--level")) {
        const std::string v = value;
        level_given = true;
        if (v == "interp") level = SimLevel::kInterpretive;
        else if (v == "cached") level = SimLevel::kDecodeCached;
        else if (v == "dynamic") level = SimLevel::kCompiledDynamic;
        else if (v == "static") level = SimLevel::kCompiledStatic;
        else if (v == "trace") level = SimLevel::kTrace;
        else if (v == "native") level = SimLevel::kNative;
        else {
          std::fprintf(stderr,
                       "error: unknown simulation level '%s' (valid levels: "
                       "%s)\n",
                       v.c_str(), kLevelNames);
          return 2;
        }
      } else if (const char* value =
                     option_value(argc, argv, i, "--max-cycles")) {
        limits.max_cycles = std::strtoull(value, nullptr, 0);
      } else if (const char* value =
                     option_value(argc, argv, i, "--watchdog")) {
        limits.watchdog_cycles = std::strtoull(value, nullptr, 0);
      } else if (const char* value =
                     option_value(argc, argv, i, "--max-stuck")) {
        limits.max_stuck_cycles = std::strtoull(value, nullptr, 0);
      } else if (const char* value =
                     option_value(argc, argv, i, "--checkpoint")) {
        checkpoint_at = std::strtoull(value, nullptr, 0);
      } else if (const char* value = option_value(argc, argv, i, "--batch")) {
        batch_lanes = static_cast<unsigned>(std::strtoul(value, nullptr, 0));
        if (batch_lanes == 0) {
          std::fprintf(stderr, "error: --batch needs a lane count >= 1\n");
          return 2;
        }
      } else if (const char* value = option_value(argc, argv, i, "--poke")) {
        // LANE:RES[IDX]=VALUE, e.g. --poke 2:dmem[0]=14
        Poke poke;
        char resource[64] = {0};
        unsigned long long poke_index = 0;
        long long poke_value = 0;
        if (std::sscanf(value, "%u:%63[^[][%llu]=%lld", &poke.lane,
                        resource, &poke_index, &poke_value) != 4) {
          std::fprintf(stderr,
                       "error: --poke wants LANE:RES[IDX]=VALUE, got '%s'\n",
                       value);
          return 2;
        }
        poke.resource = resource;
        poke.index = poke_index;
        poke.value = poke_value;
        pokes.push_back(poke);
      } else if (const char* value =
                     option_value(argc, argv, i, "--inject-fault")) {
        try {
          const FaultPlan plan = FaultPlan::parse(value);
          for (const FaultPoint& point : plan.points) fault_plan.add(point);
        } catch (const SimError& e) {
          std::fprintf(stderr, "error: %s\n", e.what());
          return 2;
        }
        resilience = true;
      } else if (!std::strcmp(argv[i], "--resilience")) {
        resilience = true;
      } else if (const char* value =
                     option_value(argc, argv, i, "--trace-threshold")) {
        trace_threshold =
            static_cast<std::uint32_t>(std::strtoul(value, nullptr, 0));
        if (trace_threshold == 0) trace_threshold = 1;
      } else if (const char* value = option_value(argc, argv, i, "--guard")) {
        const std::string v = value;
        if (v == "off") guard = GuardPolicy::kOff;
        else if (v == "recompile") guard = GuardPolicy::kRecompile;
        else if (v == "fallback") guard = GuardPolicy::kFallback;
        else {
          std::fprintf(stderr,
                       "error: unknown guard policy '%s' (valid policies: "
                       "off, recompile, fallback)\n",
                       v.c_str());
          return 2;
        }
      } else if (!std::strcmp(argv[i], "--dump")) {
        dump_state = true;
      } else if (!std::strcmp(argv[i], "--stats")) {
        show_stats = true;
      } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
        threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
      } else if (!std::strcmp(argv[i], "--cache")) {
        use_cache = true;
      } else if (const char* value =
                     option_value(argc, argv, i, "--cache-dir")) {
        cache_dir = value;
        use_cache = true;
      } else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc) {
        runs = std::strtoull(argv[++i], nullptr, 0);
        if (runs == 0) runs = 1;
      } else if (!std::strcmp(argv[i], "--profile")) {
        do_profile = true;
      } else if (!std::strcmp(argv[i], "--trace")) {
        trace_events = 200;
        if (i + 1 < argc && std::isdigit(
                                static_cast<unsigned char>(argv[i + 1][0])))
          trace_events = std::strtoull(argv[++i], nullptr, 0);
      } else {
        return usage();
      }
    }

    if (!pokes.empty() && batch_lanes == 0) {
      std::fprintf(stderr, "error: --poke needs --batch\n");
      return 2;
    }

    // Supervised mode: the run is sliced into checkpointed quanta and
    // recoverable errors (organic or injected with --inject-fault) retry
    // with backoff, then degrade down the level ladder instead of killing
    // the run. Caller limits still apply to the whole run; fatal errors
    // and exhausted recovery budgets exit through the normal error paths.
    if (resilience) {
      if (batch_lanes > 0 || trace_events > 0 || do_profile ||
          checkpoint_at != 0) {
        std::fprintf(stderr,
                     "error: --resilience is incompatible with --batch, "
                     "--trace, --profile and --checkpoint\n");
        return 2;
      }
      SimTableCache table_cache;
      if (!cache_dir.empty()) table_cache.set_artifact_dir(cache_dir);
      SupervisorConfig config;
      config.level = level;
      config.guard_policy = guard;
      config.threads = threads;
      config.faults = fault_plan;
      if (use_cache) config.cache = &table_cache;
      SupervisedRun supervised;
      std::string state_dump;
      for (std::uint64_t r = 0; r < runs; ++r) {
        RunSupervisor supervisor(*model, program, config);
        supervised = supervisor.run(limits);
        state_dump = supervisor.state().dump_nonzero();
      }
      std::printf("%s (supervised from %s): %llu cycles, %llu packets "
                  "(%llu instructions) retired, %s\n",
                  sim_level_name(supervised.final_level),
                  sim_level_name(level),
                  static_cast<unsigned long long>(supervised.result.cycles),
                  static_cast<unsigned long long>(
                      supervised.result.packets_retired),
                  static_cast<unsigned long long>(
                      supervised.result.slots_retired),
                  supervised.result.halted ? "halted"
                                           : "cycle limit reached");
      if (show_stats) std::fputs(supervised.log.summary().c_str(), stdout);
      if (dump_state) std::fputs(state_dump.c_str(), stdout);
      return 0;
    }

    // Batched mode: one compiled table, N lockstep lanes, per-lane
    // outcomes. The worst lane outcome picks the exit code so scripts see
    // the same codes as an unbatched run.
    if (batch_lanes > 0) {
      if (level_given && level != SimLevel::kCompiledStatic) {
        std::fprintf(stderr,
                     "error: --batch runs at the static level only (got "
                     "--level %s)\n",
                     sim_level_name(level));
        return 2;
      }
      if (trace_events > 0 || do_profile || checkpoint_at != 0 || use_cache) {
        std::fprintf(stderr,
                     "error: --batch is incompatible with --trace, "
                     "--profile, --checkpoint and --cache\n");
        return 2;
      }
      BatchedSimulator sim(*model, batch_lanes);
      sim.set_threads(threads);
      sim.set_guard_policy(guard);
      for (const Poke& p : pokes) {
        if (p.lane >= batch_lanes) {
          std::fprintf(stderr, "error: --poke lane %u out of range (batch "
                       "has %u lanes)\n", p.lane, batch_lanes);
          return 2;
        }
        if (model->resource_by_name(p.resource) == nullptr) {
          std::fprintf(stderr, "error: --poke names unknown resource '%s'\n",
                       p.resource.c_str());
          return 2;
        }
      }
      for (std::uint64_t r = 0; r < runs; ++r) {
        if (r == 0) {
          const SimCompileStats stats = sim.load(program);
          if (show_stats)
            std::printf(
                "simulation compiler: %zu instructions, %zu table rows, "
                "%zu micro-ops, %.3f ms, shared across %u lanes\n",
                stats.instructions, stats.table_rows, stats.microops,
                static_cast<double>(stats.compile_ns) / 1e6, sim.lanes());
        } else {
          sim.reload(program);
        }
        for (const Poke& p : pokes)
          sim.lane_state(p.lane).write(
              model->resource_by_name(p.resource)->id, p.index, p.value);
        sim.run(limits);
      }
      bool any_fatal = false;
      bool any_recoverable = false;
      for (unsigned l = 0; l < sim.lanes(); ++l) {
        const LaneRun& lane = sim.lane_run(l);
        if (lane.errored) {
          (lane.recoverable ? any_recoverable : any_fatal) = true;
          std::fprintf(stderr, "lane %u error: %s\n", l, lane.error.c_str());
        }
        std::printf(
            "lane %u: %llu cycles, %llu packets (%llu instructions) "
            "retired, %s\n",
            l, static_cast<unsigned long long>(lane.result.cycles),
            static_cast<unsigned long long>(lane.result.packets_retired),
            static_cast<unsigned long long>(lane.result.slots_retired),
            lane.errored
                ? (lane.recoverable ? "recoverable error" : "fatal error")
                : (lane.result.halted ? "halted" : "cycle limit reached"));
      }
      if (show_stats && guard != GuardPolicy::kOff) {
        for (unsigned l = 0; l < sim.lanes(); ++l) {
          const GuardStats& gs = sim.lane_guard_stats(l);
          std::printf("lane %u guards: %llu stale issue%s, %llu "
                      "recompile%s, %llu fallback%s\n",
                      l, static_cast<unsigned long long>(gs.stale_issues),
                      gs.stale_issues == 1 ? "" : "s",
                      static_cast<unsigned long long>(gs.recompiles),
                      gs.recompiles == 1 ? "" : "s",
                      static_cast<unsigned long long>(gs.fallbacks),
                      gs.fallbacks == 1 ? "" : "s");
        }
      }
      if (dump_state) {
        for (unsigned l = 0; l < sim.lanes(); ++l) {
          std::printf("lane %u state:\n", l);
          std::fputs(sim.lane_state(l).dump_nonzero().c_str(), stdout);
        }
      }
      return any_fatal ? 1 : any_recoverable ? 3 : 0;
    }

    // Observers annotate fetches with disassembly from the program text.
    const auto disasm_at = [&](std::uint64_t pc) -> std::string {
      if (pc < program.text_base || pc >= program.text_end()) return "?";
      return disassemble_word(decoder, program.words[pc - program.text_base]);
    };
    TraceObserver trace(std::cout, disasm_at, trace_events);
    ProfileObserver profile;
    SimObserver* observer = nullptr;
    if (trace_events > 0) observer = &trace;
    if (do_profile) observer = &profile;  // --profile wins if both given

    RunResult result;
    std::string state_dump;
    if (level == SimLevel::kInterpretive) {
      InterpSimulator sim(*model);
      sim.set_observer(observer);
      for (std::uint64_t r = 0; r < runs; ++r) {
        sim.load(program);
        result = run_with_checkpoint(sim, limits, checkpoint_at);
      }
      state_dump = sim.state().dump_nonzero();
    } else if (level == SimLevel::kDecodeCached) {
      CachedInterpSimulator sim(*model);
      sim.set_observer(observer);
      sim.set_guard_policy(guard);
      for (std::uint64_t r = 0; r < runs; ++r) {
        sim.load(program);
        result = run_with_checkpoint(sim, limits, checkpoint_at);
      }
      if (show_stats) {
        // Snapshot after the run: this level sequences + lowers lazily at
        // first issue, so only now is the translation work complete.
        const SimCompileStats stats = sim.compile_stats();
        std::printf(
            "decode cache: %zu instructions pre-decoded (%zu rows), "
            "%zu packet%s lazily lowered to %zu micro-ops\n",
            stats.instructions, stats.table_rows, stats.lazy_lowered_packets,
            stats.lazy_lowered_packets == 1 ? "" : "s", stats.microops);
      }
      if (show_stats && guard != GuardPolicy::kOff) print_guard_stats(sim);
      state_dump = sim.state().dump_nonzero();
    } else {
      SimTableCache table_cache;
      if (!cache_dir.empty()) table_cache.set_artifact_dir(cache_dir);
      CompiledSimulator sim(*model, level);
      sim.set_observer(observer);
      sim.set_threads(threads);
      sim.set_guard_policy(guard);
      if (use_cache) sim.set_table_cache(&table_cache);
      if (trace_threshold != 0) {
        TraceConfig config;
        config.hot_threshold = trace_threshold;
        sim.set_trace_config(config);
      }
      if (level == SimLevel::kNative) {
        // The CLI runs once and exits: wait for the region compile so the
        // run (and --stats) actually exercises the native tier.
        NativeConfig native_config;
        native_config.blocking = true;
        sim.set_native_config(native_config);
      }
      for (std::uint64_t r = 0; r < runs; ++r) {
        const SimCompileStats stats = sim.load(program);
        if (show_stats)
          std::printf(
              "simulation compiler: %zu instructions, %zu table rows, "
              "%zu micro-ops, %.3f ms, %u thread%s%s\n",
              stats.instructions, stats.table_rows, stats.microops,
              static_cast<double>(stats.compile_ns) / 1e6,
              stats.threads_used, stats.threads_used == 1 ? "" : "s",
              stats.cache_hit ? ", cache hit" : "");
        result = run_with_checkpoint(sim, limits, checkpoint_at);
      }
      if (show_stats && sim.trace_stats() != nullptr) {
        const TraceStats& ts = *sim.trace_stats();
        std::printf(
            "traces: %llu formed (%llu key%s rejected), %llu adopted, "
            "%llu invalidated\n",
            static_cast<unsigned long long>(ts.formed),
            static_cast<unsigned long long>(ts.rejected),
            ts.rejected == 1 ? "" : "s",
            static_cast<unsigned long long>(ts.adopted),
            static_cast<unsigned long long>(ts.invalidated));
        std::printf(
            "traces: %llu entries, %llu chained, %llu side exits "
            "(%.1f%% of entries), %llu cycles in traces (%.1f%% of run)\n",
            static_cast<unsigned long long>(ts.entries),
            static_cast<unsigned long long>(ts.chained),
            static_cast<unsigned long long>(ts.side_exits),
            ts.entries == 0 ? 0.0
                            : 100.0 * static_cast<double>(ts.side_exits) /
                                  static_cast<double>(ts.entries),
            static_cast<unsigned long long>(ts.trace_cycles),
            result.cycles == 0 ? 0.0
                               : 100.0 * static_cast<double>(ts.trace_cycles) /
                                     static_cast<double>(result.cycles));
      }
      if (show_stats && guard != GuardPolicy::kOff) print_guard_stats(sim);
      if (show_stats && sim.level() == SimLevel::kNative) {
        const NativeStats* ns = sim.native_stats();
        if (ns == nullptr) {
          std::printf("native: no C++ toolchain, ran at trace level\n");
        } else {
          std::printf(
              "native: %llu region%s installed (%llu compile%s, %.3f ms), "
              "%llu trace + %llu span dispatches, %llu stand-down%s\n",
              static_cast<unsigned long long>(ns->regions),
              ns->regions == 1 ? "" : "s",
              static_cast<unsigned long long>(ns->compiles),
              ns->compiles == 1 ? "" : "s",
              static_cast<double>(ns->compile_ns) / 1e6,
              static_cast<unsigned long long>(ns->trace_dispatches),
              static_cast<unsigned long long>(ns->span_dispatches),
              static_cast<unsigned long long>(ns->stand_downs),
              ns->stand_downs == 1 ? "" : "s");
          if (!sim.native_last_error().empty())
            std::printf("native: last compile error: %s\n",
                        sim.native_last_error().c_str());
        }
      }
      if (show_stats && use_cache) {
        const SimTableCache::Stats cs = table_cache.stats();
        std::printf("table cache: %llu hit%s, %llu miss%s, %llu "
                    "invalidation%s, %zu cached\n",
                    static_cast<unsigned long long>(cs.hits),
                    cs.hits == 1 ? "" : "s",
                    static_cast<unsigned long long>(cs.misses),
                    cs.misses == 1 ? "" : "es",
                    static_cast<unsigned long long>(cs.invalidations),
                    cs.invalidations == 1 ? "" : "s", cs.entries);
        if (!cache_dir.empty())
          std::printf("artifacts: %llu hit%s, %llu miss%s, %llu "
                      "eviction%s (%s)\n",
                      static_cast<unsigned long long>(cs.artifact_hits),
                      cs.artifact_hits == 1 ? "" : "s",
                      static_cast<unsigned long long>(cs.artifact_misses),
                      cs.artifact_misses == 1 ? "" : "es",
                      static_cast<unsigned long long>(cs.artifact_evictions),
                      cs.artifact_evictions == 1 ? "" : "s",
                      cache_dir.c_str());
      }
      state_dump = sim.state().dump_nonzero();
    }
    std::printf("%s: %llu cycles, %llu packets (%llu instructions) retired, "
                "%s\n",
                sim_level_name(level),
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.packets_retired),
                static_cast<unsigned long long>(result.slots_retired),
                result.halted ? "halted" : "cycle limit reached");
    if (do_profile)
      std::fputs(("hot spots:\n" + profile.report(10, disasm_at)).c_str(),
                 stdout);
    if (dump_state) std::fputs(state_dump.c_str(), stdout);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Recoverable guarded-execution stops (watchdog / stuck limits) exit
    // with a distinct code so scripts can tell them from fatal errors.
    return e.recoverable() ? 3 : 1;
  }
}
