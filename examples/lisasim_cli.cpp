// lisasim — command-line driver for the retargetable tool chain.
//
//   lisasim check   <model.lisa>                 parse + analyze + lint
//   lisasim dump    <model.lisa>                 print the model data base
//   lisasim asm     <model> <prog.asm>           assemble, print words
//   lisasim disasm  <model> <prog.asm>           assemble + disassemble
//   lisasim codegen <model> <prog.asm>           emit a standalone C++
//                                                compiled simulator
//   lisasim run     <model> <prog.asm> [options] simulate
//
// <model> is a path to a machine description, or one of the built-in
// models "@tinydsp" / "@c62x".
//
// run options:
//   --level interp|cached|dynamic|static   simulation level (default static)
//   --max-cycles N                  stop after N cycles
//   --dump                          print non-zero state at the end
//   --stats                         print simulation-compile statistics
//   --trace [N]                     print the first N trace events (def 200)
//   --profile                       print the hot-spot table at the end
//   --threads N                     simulation-compiler workers (0 = auto)
//   --cache                         serve repeated loads from the table
//                                   cache (with --runs N, reloads hit it)
//   --runs N                        load + run the program N times
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "asm/disasm.hpp"
#include "codegen/cppgen.hpp"
#include "model/database.hpp"
#include "model/sema.hpp"
#include "model/validate.hpp"
#include "sim/cached_interp.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"
#include "sim/observer.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SimError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string model_source(const std::string& spec) {
  if (spec == "@tinydsp") return std::string(targets::tinydsp_model_source());
  if (spec == "@c62x") return std::string(targets::c62x_model_source());
  if (spec == "@c54x") return std::string(targets::c54x_model_source());
  return read_file(spec);
}

constexpr const char kLevelNames[] = "interp, cached, dynamic, static";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: lisasim <check|dump|asm|disasm|codegen|run> <model> "
               "[prog.asm] [--level interp|cached|dynamic|static] "
               "[--max-cycles N] [--dump] [--stats] [--threads N] [--cache] "
               "[--runs N] [--trace [N]] [--profile]\n"
               "       <model> is a .lisa path or @tinydsp / @c62x / @c54x\n"
               "       --level values: %s\n",
               kLevelNames);
}

int usage() {
  print_usage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout);
      return 0;
    }
  }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string model_spec = argv[2];

  try {
    const std::string source = model_source(model_spec);
    DiagnosticEngine diags;
    auto model = compile_model_source(source, model_spec, diags);
    if (!model) {
      std::fputs(diags.render().c_str(), stderr);
      return 1;
    }
    if (diags.error_count() == 0 && !diags.diagnostics().empty())
      std::fputs(diags.render().c_str(), stderr);

    if (command == "check") {
      Decoder decoder(*model);
      DiagnosticEngine lint;
      const std::size_t findings = validate_model(*model, lint);
      std::fputs(lint.render().c_str(), stderr);
      std::printf("%s: OK (%zu operations, %zu with coding, %d pipeline "
                  "stages, %u-bit words, %zu lint finding%s)\n",
                  model->name.c_str(), decoder.stats().operations,
                  decoder.stats().coding_operations, model->pipeline.depth(),
                  model->fetch.word_bits, findings,
                  findings == 1 ? "" : "s");
      return 0;
    }
    if (command == "dump") {
      std::fputs(dump_model(*model).c_str(), stdout);
      return 0;
    }

    if (argc < 4) return usage();
    const std::string asm_path = argv[3];
    Decoder decoder(*model);
    DiagnosticEngine asm_diags;
    Assembler assembler(*model, decoder);
    const LoadedProgram program =
        assembler.assemble(read_file(asm_path), asm_path, asm_diags);
    if (asm_diags.has_errors()) {
      std::fputs(asm_diags.render().c_str(), stderr);
      return 1;
    }

    if (command == "asm") {
      for (std::size_t i = 0; i < program.words.size(); ++i)
        std::printf("%06llx: %0*llx\n",
                    static_cast<unsigned long long>(program.text_base + i),
                    static_cast<int>((model->fetch.word_bits + 3) / 4),
                    static_cast<unsigned long long>(program.words[i]));
      return 0;
    }
    if (command == "disasm") {
      for (std::size_t i = 0; i < program.words.size(); ++i)
        std::printf("%06llx: %s\n",
                    static_cast<unsigned long long>(program.text_base + i),
                    disassemble_word(decoder, program.words[i]).c_str());
      return 0;
    }
    if (command == "codegen") {
      std::fputs(generate_cpp_simulator(*model, program).c_str(), stdout);
      return 0;
    }
    if (command != "run") return usage();

    // Options.
    SimLevel level = SimLevel::kCompiledStatic;
    std::uint64_t max_cycles = UINT64_MAX;
    bool dump_state = false;
    bool show_stats = false;
    bool do_profile = false;
    bool use_cache = false;
    unsigned threads = 1;
    std::uint64_t runs = 1;
    std::uint64_t trace_events = 0;
    for (int i = 4; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--level") && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value == "interp") level = SimLevel::kInterpretive;
        else if (value == "cached") level = SimLevel::kDecodeCached;
        else if (value == "dynamic") level = SimLevel::kCompiledDynamic;
        else if (value == "static") level = SimLevel::kCompiledStatic;
        else {
          std::fprintf(stderr,
                       "error: unknown simulation level '%s' (valid levels: "
                       "%s)\n",
                       value.c_str(), kLevelNames);
          return 2;
        }
      } else if (!std::strcmp(argv[i], "--max-cycles") && i + 1 < argc) {
        max_cycles = std::strtoull(argv[++i], nullptr, 0);
      } else if (!std::strcmp(argv[i], "--dump")) {
        dump_state = true;
      } else if (!std::strcmp(argv[i], "--stats")) {
        show_stats = true;
      } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
        threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
      } else if (!std::strcmp(argv[i], "--cache")) {
        use_cache = true;
      } else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc) {
        runs = std::strtoull(argv[++i], nullptr, 0);
        if (runs == 0) runs = 1;
      } else if (!std::strcmp(argv[i], "--profile")) {
        do_profile = true;
      } else if (!std::strcmp(argv[i], "--trace")) {
        trace_events = 200;
        if (i + 1 < argc && std::isdigit(
                                static_cast<unsigned char>(argv[i + 1][0])))
          trace_events = std::strtoull(argv[++i], nullptr, 0);
      } else {
        return usage();
      }
    }

    // Observers annotate fetches with disassembly from the program text.
    const auto disasm_at = [&](std::uint64_t pc) -> std::string {
      if (pc < program.text_base || pc >= program.text_end()) return "?";
      return disassemble_word(decoder, program.words[pc - program.text_base]);
    };
    TraceObserver trace(std::cout, disasm_at, trace_events);
    ProfileObserver profile;
    SimObserver* observer = nullptr;
    if (trace_events > 0) observer = &trace;
    if (do_profile) observer = &profile;  // --profile wins if both given

    RunResult result;
    std::string state_dump;
    if (level == SimLevel::kInterpretive) {
      InterpSimulator sim(*model);
      sim.set_observer(observer);
      for (std::uint64_t r = 0; r < runs; ++r) {
        sim.load(program);
        result = sim.run(max_cycles);
      }
      state_dump = sim.state().dump_nonzero();
    } else if (level == SimLevel::kDecodeCached) {
      CachedInterpSimulator sim(*model);
      sim.set_observer(observer);
      for (std::uint64_t r = 0; r < runs; ++r) {
        sim.load(program);
        result = sim.run(max_cycles);
      }
      state_dump = sim.state().dump_nonzero();
    } else {
      SimTableCache table_cache;
      CompiledSimulator sim(*model, level);
      sim.set_observer(observer);
      sim.set_threads(threads);
      if (use_cache) sim.set_table_cache(&table_cache);
      for (std::uint64_t r = 0; r < runs; ++r) {
        const SimCompileStats stats = sim.load(program);
        if (show_stats)
          std::printf(
              "simulation compiler: %zu instructions, %zu table rows, "
              "%zu micro-ops, %.3f ms, %u thread%s%s\n",
              stats.instructions, stats.table_rows, stats.microops,
              static_cast<double>(stats.compile_ns) / 1e6,
              stats.threads_used, stats.threads_used == 1 ? "" : "s",
              stats.cache_hit ? ", cache hit" : "");
        result = sim.run(max_cycles);
      }
      if (show_stats && use_cache) {
        const SimTableCache::Stats cs = table_cache.stats();
        std::printf("table cache: %llu hit%s, %llu miss%s, %zu cached\n",
                    static_cast<unsigned long long>(cs.hits),
                    cs.hits == 1 ? "" : "s",
                    static_cast<unsigned long long>(cs.misses),
                    cs.misses == 1 ? "" : "es", cs.entries);
      }
      state_dump = sim.state().dump_nonzero();
    }
    std::printf("%s: %llu cycles, %llu packets (%llu instructions) retired, "
                "%s\n",
                sim_level_name(level),
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.packets_retired),
                static_cast<unsigned long long>(result.slots_retired),
                result.halted ? "halted" : "cycle limit reached");
    if (do_profile)
      std::fputs(("hot spots:\n" + profile.report(10, disasm_at)).c_str(),
                 stdout);
    if (dump_state) std::fputs(state_dump.c_str(), stdout);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
