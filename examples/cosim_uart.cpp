// Co-simulation demo (the paper's §7 future work): a memory-mapped UART
// device attached to the c62x data memory. The target program prints a
// string by storing characters to the UART's TX register; a host-side
// MemoryHook turns those stores into console output and feeds data back
// through an RX register. The hook fires identically at every simulation
// level — device models plug into the generated simulators unchanged.
#include <cstdio>
#include <string>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"
#include "targets/c62x.hpp"

using namespace lisasim;

namespace {

// dmem map: 0x3F00 = TX (write a character), 0x3F01 = RX (read next input
// character, 0 when exhausted), 0x3F02 = TX count (reads back).
constexpr std::uint64_t kTx = 0x3F00;
constexpr std::uint64_t kRx = 0x3F01;
constexpr std::uint64_t kTxCount = 0x3F02;

class Uart final : public MemoryHook {
 public:
  explicit Uart(std::string input) : input_(std::move(input)) {}

  std::int64_t on_read(std::uint64_t index, std::int64_t stored) override {
    if (index == kRx)
      return cursor_ < input_.size()
                 ? static_cast<unsigned char>(input_[cursor_++])
                 : 0;
    if (index == kTxCount) return static_cast<std::int64_t>(output_.size());
    return stored;
  }

  void on_write(std::uint64_t index, std::int64_t value) override {
    if (index == kTx) output_.push_back(static_cast<char>(value & 0xFF));
  }

  const std::string& output() const { return output_; }

 private:
  std::string input_;
  std::size_t cursor_ = 0;
  std::string output_;
};

// Reads characters from RX until 0, uppercases a..z, writes them to TX.
constexpr const char* kEchoProgram = R"(
        MVK 0x3F01, A4       ; RX address
        MVK 0x3F00, A5       ; TX address
loop:   LDW A4, 0, A6        ; next input character
        NOP 4
        MV A6, B0
        [!B0] B done         ; 0 = end of input
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        ; uppercase: if ('a' <= c <= 'z') c -= 32
        MVK 96, A7
        CMPGT A6, A7, B1     ; c > 'a'-1
        MVK 123, A7
        CMPLT A6, A7, B2     ; c < 'z'+1
        AND B1, B2, B1
        [B1] ADDK -32, A6
        STW A6, A5, 0        ; transmit
        NOP 2
        B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
done:   HALT
)";

std::string run_at(const Model& model, const LoadedProgram& program,
                   SimLevel level, const std::string& input,
                   std::uint64_t* cycles) {
  Uart uart(input);
  if (level == SimLevel::kInterpretive) {
    InterpSimulator sim(model);
    sim.load(program);
    sim.state().map_hook(model.resource_by_name("dmem")->id, kTx,
                         kTxCount + 1, &uart);
    *cycles = sim.run(1'000'000).cycles;
  } else {
    CompiledSimulator sim(model, level);
    sim.load(program);
    sim.state().map_hook(model.resource_by_name("dmem")->id, kTx,
                         kTxCount + 1, &uart);
    *cycles = sim.run(1'000'000).cycles;
  }
  return uart.output();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string input =
      argc > 1 ? argv[1] : "hello from the co-simulated uart";
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  const LoadedProgram program =
      assemble_or_throw(*model, decoder, kEchoProgram, "uart.asm");

  std::uint64_t cycles_interp = 0, cycles_static = 0;
  const std::string out_interp =
      run_at(*model, program, SimLevel::kInterpretive, input, &cycles_interp);
  const std::string out_static = run_at(*model, program,
                                        SimLevel::kCompiledStatic, input,
                                        &cycles_static);

  std::printf("input : %s\n", input.c_str());
  std::printf("output: %s\n", out_static.c_str());
  std::printf("interpretive: %llu cycles, compiled-static: %llu cycles\n",
              static_cast<unsigned long long>(cycles_interp),
              static_cast<unsigned long long>(cycles_static));
  std::printf("device behavior identical across levels: %s\n",
              out_interp == out_static && cycles_interp == cycles_static
                  ? "yes"
                  : "NO");
  return 0;
}
