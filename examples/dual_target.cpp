// Dual-target demo: the same dot-product computation described for two
// very different DSPs — the VLIW c62x and the accumulator-machine c54x —
// each simulated by tools generated from its machine description. This is
// the paper's retargetability thesis in one program: nothing below is
// hand-written per processor except the two assembly kernels.
//
// Usage: ./examples/dual_target [elements]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"

using namespace lisasim;

namespace {

struct TargetRun {
  std::uint64_t cycles = 0;
  std::int64_t result = 0;
};

TargetRun simulate(std::string_view model_source, const char* model_name,
                   const std::string& asm_source, const char* result_memory,
                   std::uint64_t result_addr) {
  auto model = compile_model_source_or_throw(model_source, model_name);
  Decoder decoder(*model);
  LoadedProgram program =
      assemble_or_throw(*model, decoder, asm_source, model_name);
  CompiledSimulator sim(*model, SimLevel::kCompiledStatic);
  sim.load(program);
  const RunResult run = sim.run(10'000'000);
  TargetRun out;
  out.cycles = run.cycles;
  out.result =
      sim.state().read(model->resource_by_name(result_memory)->id,
                       result_addr);
  return out;
}

std::string c62x_kernel(int n) {
  // x[] at 100, y[] at 300, result to dmem[600].
  std::string s;
  s += "        MVK 100, A4\n";   // x pointer
  s += "        MVK 300, A5\n";   // y pointer (wait: use register base)\n";
  s += "        MVK " + std::to_string(n) + ", B0\n";
  s += "        MVK 0, A9\n";     // acc
  s += "loop:   LDW A4, 0, A6\n";
  s += "        LDW A5, 0, A7\n";
  s += "        NOP 3\n";
  s += "        MPY A6, A7, A8\n";
  s += "        ADD A9, A8, A9\n";
  s += "        ADDK 1, A4\n";
  s += "        ADDK 1, A5\n";
  s += "        ADDK -1, B0\n";
  s += "        [B0] B loop\n";
  s += "        NOP 1\n        NOP 1\n        NOP 1\n        NOP 1\n"
       "        NOP 1\n";
  s += "        MVK 600, A3\n";
  s += "        STW A9, A3, 0\n";
  s += "        NOP 3\n";
  s += "        HALT\n";
  return s;
}

std::string c54x_kernel(int n) {
  // x[] at 100, y[] at 200, result to dmem[600], scratch at 599.
  std::string s;
  s += "        LDAR AR1, " + std::to_string(n - 1) + "\n";
  s += "        LDAR AR2, 100\n";
  s += "        LDAR AR3, 200\n";
  s += "        LDI 0, A\n";
  s += "loop:   LD *AR2, B\n";
  s += "        ST B, @599\n";
  s += "        LDT @599\n";
  s += "        MAC *AR3, A\n";
  s += "        MAR AR2, 1\n";
  s += "        MAR AR3, 1\n";
  s += "        BANZ loop, AR1\n";
  s += "        ST A, @600\n";
  s += "        HALT\n";
  return s;
}

std::string data_section(const char* mem, int n, int x_base, int y_base) {
  std::string s = "        .data " + std::string(mem) + " " +
                  std::to_string(x_base) + "\n        .word ";
  for (int i = 0; i < n; ++i)
    s += (i ? ", " : "") + std::to_string(i + 1);
  s += "\n        .data " + std::string(mem) + " " + std::to_string(y_base) +
       "\n        .word ";
  for (int i = 0; i < n; ++i)
    s += (i ? ", " : "") + std::to_string(2 * (i + 1));
  s += "\n";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  if (n < 1 || n > 90) {
    std::fprintf(stderr, "usage: %s [1..90 elements]\n", argv[0]);
    return 2;
  }
  std::int64_t expected = 0;
  for (int i = 1; i <= n; ++i) expected += static_cast<std::int64_t>(i) * 2 * i;

  const TargetRun c62x =
      simulate(targets::c62x_model_source(), "c62x",
               c62x_kernel(n) + data_section("dmem", n, 100, 300), "dmem",
               600);
  const TargetRun c54x =
      simulate(targets::c54x_model_source(), "c54x",
               c54x_kernel(n) + data_section("dmem", n, 100, 200), "dmem",
               600);

  std::printf("dot product of %d elements (expected %lld):\n\n", n,
              static_cast<long long>(expected));
  std::printf("%-22s %10s %10s %14s\n", "target", "result", "cycles",
              "cycles/elem");
  std::printf("%-22s %10lld %10llu %14.1f\n", "c62x (VLIW, 11-stage)",
              static_cast<long long>(c62x.result),
              static_cast<unsigned long long>(c62x.cycles),
              static_cast<double>(c62x.cycles) / n);
  std::printf("%-22s %10lld %10llu %14.1f\n", "c54x (MAC, 6-stage)",
              static_cast<long long>(c54x.result),
              static_cast<unsigned long long>(c54x.cycles),
              static_cast<double>(c54x.cycles) / n);
  const bool ok = c62x.result == expected && c54x.result == expected;
  std::printf("\nboth targets agree with the reference: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
