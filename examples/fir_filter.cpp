// FIR filter on the c62x model: assemble the generated DSP kernel, compile
// it to a simulation table, run it, and check the outputs against the C
// reference model. Prints cycle statistics the way a DSP engineer would
// read them (cycles per output sample).
//
// Usage: ./examples/fir_filter [taps] [samples]
#include <cstdio>
#include <cstdlib>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "targets/c62x.hpp"
#include "workloads/workloads.hpp"

using namespace lisasim;

int main(int argc, char** argv) {
  const int taps = argc > 1 ? std::atoi(argv[1]) : 16;
  const int samples = argc > 2 ? std::atoi(argv[2]) : 64;
  if (taps < 1 || samples < 1) {
    std::fprintf(stderr, "usage: %s [taps >= 1] [samples >= 1]\n", argv[0]);
    return 2;
  }

  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);

  const workloads::Workload w = workloads::make_fir(taps, samples);
  LoadedProgram program =
      assemble_or_throw(*model, decoder, w.asm_source, "fir.asm");
  std::printf("FIR %d taps x %d samples: %zu instruction words\n", taps,
              samples, program.words.size());

  CompiledSimulator sim(*model, SimLevel::kCompiledStatic);
  const SimCompileStats stats = sim.load(program);
  const RunResult result = sim.run();
  std::printf("simulation compiled: %zu table rows, %zu micro-ops\n",
              stats.table_rows, stats.microops);
  std::printf("ran %llu cycles (%.1f cycles per output sample), %s\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<double>(result.cycles) / samples,
              result.halted ? "halted cleanly" : "hit the cycle limit");

  const Resource* dmem = model->resource_by_name("dmem");
  std::size_t mismatches = 0;
  for (const auto& [addr, value] : w.expected_dmem) {
    if (sim.state().read(dmem->id, addr) != value) ++mismatches;
  }
  std::printf("outputs vs C reference: %zu/%zu match\n",
              w.expected_dmem.size() - mismatches, w.expected_dmem.size());

  std::printf("first outputs:");
  for (std::size_t i = 0; i < w.expected_dmem.size() && i < 8; ++i)
    std::printf(" %lld",
                static_cast<long long>(
                    sim.state().read(dmem->id, w.expected_dmem[i].first)));
  std::printf("\n");
  return mismatches == 0 ? 0 : 1;
}
