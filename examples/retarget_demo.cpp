// Retargeting demo — the paper's core pitch: describe a brand-new
// processor in the machine description language and get the complete tool
// chain (decoder, assembler, disassembler, interpretive AND compiled
// cycle-accurate simulators) generated from it, with zero hand-written
// simulator code.
//
// The machine below is a 3-stage accumulator DSP ("accu16") invented for
// this demo; it exists nowhere else in the repository.
#include <cstdio>

#include "asm/assembler.hpp"
#include "asm/disasm.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"

using namespace lisasim;

namespace {

constexpr std::string_view kAccu16 = R"LISA(
MODEL accu16;

RESOURCE {
  PROGRAM_COUNTER uint32 PC;
  int32 ACC;                      // the accumulator
  REGISTER int16 X[8];            // small operand file
  MEMORY uint32 prog[256];
  MEMORY int16 data[256];
  PIPELINE pipe = { FE; DE; EX; };
}

FETCH { WORD 16; MEMORY prog; }

OPERATION xreg {
  DECLARE { LABEL i; }
  CODING { i=0bx[3] }
  SYNTAX { "X" i }
  EXPRESSION { X[i] }
}

OPERATION lda IN pipe.EX {
  DECLARE { LABEL addr; }
  CODING { 0b0001 0b0000 addr=0bx[8] }
  SYNTAX { "LDA " addr }
  BEHAVIOR { ACC = data[addr]; }
}

OPERATION sta IN pipe.EX {
  DECLARE { LABEL addr; }
  CODING { 0b0010 0b0000 addr=0bx[8] }
  SYNTAX { "STA " addr }
  BEHAVIOR { data[addr] = sat(ACC, 16); }
}

OPERATION addx IN pipe.EX {
  DECLARE { INSTANCE x = xreg; }
  CODING { 0b0011 0b000000000 x }
  SYNTAX { "ADD " x }
  BEHAVIOR { ACC = ACC + x; }
}

OPERATION macx IN pipe.EX {
  DECLARE { INSTANCE x = xreg; LABEL addr; }
  CODING { 0b0100 0b00 x addr=0bx[7] }
  SYNTAX { "MAC " x ", " addr }
  BEHAVIOR { ACC = sat(ACC + x * data[addr], 32); }
}

OPERATION ldx IN pipe.EX {
  DECLARE { INSTANCE x = xreg; LABEL imm; }
  CODING { 0b0101 0b00 x imm=0bx[7] }
  SYNTAX { "LDX " x ", " imm }
  BEHAVIOR { x = sext(imm, 7); }
}

OPERATION clr IN pipe.EX {
  CODING { 0b0110 0b000000000000 }
  SYNTAX { "CLR" }
  BEHAVIOR { ACC = 0; }
}

OPERATION stop IN pipe.EX {
  CODING { 0b1111 0b000000000000 }
  SYNTAX { "STOP" }
  BEHAVIOR { halt(); }
}

OPERATION instruction {
  DECLARE { GROUP insn = { lda || sta || addx || macx || ldx || clr ||
                           stop }; }
  CODING { insn }
  SYNTAX { insn }
}
)LISA";

}  // namespace

int main() {
  // One call turns the description into a full model...
  auto model = compile_model_source_or_throw(kAccu16, "accu16");
  Decoder decoder(*model);
  std::printf("retargeted to '%s': %zu operations, 16-bit instruction "
              "words, %d-stage pipeline\n",
              model->name.c_str(), model->operations.size(),
              model->pipeline.depth());

  // ...including the assembler. Compute 3*5 + 7*2 = 29 via MAC.
  const char* source = R"(
        LDX X1, 3
        LDX X2, 7
        CLR
        MAC X1, 10      ; ACC += X1 * data[10]
        MAC X2, 11      ; ACC += X2 * data[11]
        ADD X3          ; X3 is 0
        STA 20
        LDA 20
        STOP
        .data data 10
        .word 5, 2
  )";
  LoadedProgram program =
      assemble_or_throw(*model, decoder, source, "demo.asm");
  std::printf("assembled %zu 16-bit words; first word: \"%s\"\n",
              program.words.size(),
              disassemble_word(decoder, program.words[0]).c_str());

  // ...and both simulators.
  InterpSimulator interp(*model);
  interp.load(program);
  const RunResult ri = interp.run();

  CompiledSimulator compiled(*model, SimLevel::kCompiledStatic);
  compiled.load(program);
  const RunResult rc = compiled.run();

  const Resource* acc = model->resource_by_name("ACC");
  const Resource* data = model->resource_by_name("data");
  std::printf("ACC = %lld (expected 29), data[20] = %lld\n",
              static_cast<long long>(compiled.state().read(acc->id)),
              static_cast<long long>(compiled.state().read(data->id, 20)));
  std::printf("interpretive %llu cycles == compiled %llu cycles: %s\n",
              static_cast<unsigned long long>(ri.cycles),
              static_cast<unsigned long long>(rc.cycles),
              ri.cycles == rc.cycles ? "yes" : "NO");
  return 0;
}
