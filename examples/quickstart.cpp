// Quickstart: the whole tool flow in one file.
//
//   machine description --(LISA compiler)--> model data base
//   model --> decoder + assembler + disassembler + simulators, generated
//   assembly --> object code --(simulation compiler)--> simulation table
//   run: interpretive vs compiled, identical results
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "asm/assembler.hpp"
#include "asm/disasm.hpp"
#include "model/database.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

int main() {
  // 1. Compile the machine description (the "LISA compiler").
  auto model = compile_model_source_or_throw(targets::tinydsp_model_source(),
                                             "tinydsp");
  std::printf("model '%s': %zu operations, %d pipeline stages\n",
              model->name.c_str(), model->operations.size(),
              model->pipeline.depth());

  // 2. The decoder, assembler and disassembler are generated from the
  //    model — nothing below is specific to tinydsp.
  Decoder decoder(*model);
  const char* source = R"(
        ; sum = 3 * 4 + 10, computed through memory
        MVK 3, R1
        MVK 4, R2
        MUL.L R3, R1, R2     ; R3 = 12
        MVK 100, R5
        ST R3, R5, 0         ; dmem[100] = 12
        LD R4, R5, 0         ; R4 = 12 (write-back in WB)
        MVK 10, R6
        ADD.L R7, R4, R6     ; R7 = 22
        HALT
  )";
  LoadedProgram program =
      assemble_or_throw(*model, decoder, source, "quickstart.asm");
  std::printf("assembled %zu words; word 2 disassembles to \"%s\"\n",
              program.words.size(),
              disassemble_word(decoder, program.words[2]).c_str());

  // 3. Run interpretively (decode every fetch)...
  InterpSimulator interp(*model);
  interp.load(program);
  const RunResult r1 = interp.run();
  std::printf("interpretive: %llu cycles, R7 = %lld\n",
              static_cast<unsigned long long>(r1.cycles),
              static_cast<long long>(
                  interp.state().read(model->resource_by_name("R")->id, 7)));

  // 4. ...and compiled: the simulation compiler pre-decodes the program
  //    into a simulation table, then the run needs no decoding at all.
  CompiledSimulator compiled(*model, SimLevel::kCompiledStatic);
  const SimCompileStats stats = compiled.load(program);
  const RunResult r2 = compiled.run();
  std::printf("compiled:     %llu cycles, %zu instructions -> %zu micro-ops\n",
              static_cast<unsigned long long>(r2.cycles), stats.instructions,
              stats.microops);

  // 5. The paper's claim: same cycles, same state ("no loss in accuracy").
  std::printf("cycle-accurate match: %s\n",
              r1.cycles == r2.cycles && interp.state() == compiled.state()
                  ? "yes"
                  : "NO");

  // 6. The model data base (Fig. 5): dump + reload round-trips.
  const std::string db = dump_model(*model);
  std::printf("model data base: %zu bytes of canonical description\n",
              db.size());
  return 0;
}
