// IMA ADPCM speech encoder on the c62x model — the paper's second
// benchmark application. Runs the fully predicated (branch-free) encoder at
// all three simulation levels, demonstrating identical results and the
// compiled-simulation speed advantage on a single program.
//
// Usage: ./examples/adpcm_codec [samples]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"
#include "targets/c62x.hpp"
#include "workloads/workloads.hpp"

using namespace lisasim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 512;
  if (samples < 1) {
    std::fprintf(stderr, "usage: %s [samples >= 1]\n", argv[0]);
    return 2;
  }

  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  const workloads::Workload w = workloads::make_adpcm(samples);
  LoadedProgram program =
      assemble_or_throw(*model, decoder, w.asm_source, "adpcm.asm");

  std::printf("IMA ADPCM encoder, %d samples, %zu instruction words\n",
              samples, program.words.size());

  // Interpretive run.
  InterpSimulator interp(*model);
  interp.load(program);
  auto t0 = std::chrono::steady_clock::now();
  const RunResult ri = interp.run();
  const double interp_s = seconds_since(t0);

  // Compiled run (static level), compilation timed separately.
  CompiledSimulator compiled(*model, SimLevel::kCompiledStatic);
  t0 = std::chrono::steady_clock::now();
  compiled.load(program);
  const double compile_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  const RunResult rc = compiled.run();
  const double compiled_s = seconds_since(t0);

  std::printf("interpretive: %llu cycles in %.3f ms (%.0f cycles/s)\n",
              static_cast<unsigned long long>(ri.cycles), interp_s * 1e3,
              ri.cycles / interp_s);
  std::printf("compiled:     simulation compilation %.3f ms, run %.3f ms "
              "(%.0f cycles/s)\n",
              compile_s * 1e3, compiled_s * 1e3, rc.cycles / compiled_s);
  std::printf("accuracy:     cycles %s, state %s\n",
              ri.cycles == rc.cycles ? "equal" : "DIFFER",
              interp.state() == compiled.state() ? "equal" : "DIFFER");

  const Resource* dmem = model->resource_by_name("dmem");
  std::size_t mismatches = 0;
  for (const auto& [addr, value] : w.expected_dmem)
    if (compiled.state().read(dmem->id, addr) != value) ++mismatches;
  std::printf("codec output vs C reference: %zu/%zu codes match\n",
              w.expected_dmem.size() - mismatches, w.expected_dmem.size());

  std::printf("first 16 ADPCM codes:");
  for (std::size_t i = 0; i < w.expected_dmem.size() && i < 16; ++i)
    std::printf(" %lld",
                static_cast<long long>(
                    compiled.state().read(dmem->id, w.expected_dmem[i].first)));
  std::printf("\n");
  return mismatches == 0 ? 0 : 1;
}
