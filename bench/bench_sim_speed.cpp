// E2 — paper Fig. 7: simulation speed, compiled vs. interpretive.
//
// The paper measures cycles/second of the generated compiled simulator
// against TI's interpretive sim62x on the three applications: 2k..9k
// cycles/s interpretive vs. 288k..403k compiled = 47x..170x speedup.
// Our interpretive baseline performs the same per-cycle work (fetch,
// decode, operand extraction, tree walk) that sim62x-class simulators do;
// absolute rates differ on modern hosts, the speedup shape is the claim.
//
// Beyond the paper's two points this reports all four simulation levels,
// each with cycles/s, MIPS (retired instruction slots per second) and —
// for the micro-op levels — dispatched micro-ops per simulated cycle, so
// a change to the execution core is measured per level, not asserted.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/cached_interp.hpp"

using namespace lisasim;

namespace {

struct LevelRate {
  double cycles_per_second = 0;
  double mips = 0;            // retired slots per second / 1e6
  double microops_per_cycle = 0;  // 0 when the level does not dispatch uops
};

template <typename Sim>
LevelRate time_level(Sim& sim, const LoadedProgram& program,
                     std::uint64_t cycles) {
  RunResult result;
  const double seconds = bench::time_per_call([&] {
    // Reload state only; decode caches / simulation tables are reused,
    // exactly like the paper's flow where compilation happens once.
    sim.reload(program);
    result = sim.run();
  });
  LevelRate rate;
  rate.cycles_per_second = static_cast<double>(cycles) / seconds;
  rate.mips = static_cast<double>(result.slots_retired) / seconds / 1e6;
  return rate;
}

LevelRate rate_interp(const Model& model, const LoadedProgram& program,
                      std::uint64_t cycles) {
  // The interpretive baseline re-decodes every fetch: load() == reload().
  InterpSimulator sim(model);
  RunResult result;
  const double seconds = bench::time_per_call([&] {
    sim.load(program);
    result = sim.run();
  });
  LevelRate rate;
  rate.cycles_per_second = static_cast<double>(cycles) / seconds;
  rate.mips = static_cast<double>(result.slots_retired) / seconds / 1e6;
  return rate;
}

LevelRate rate_cached(const Model& model, const LoadedProgram& program,
                      std::uint64_t cycles) {
  CachedInterpSimulator sim(model);
  sim.load(program);  // pre-decode once, outside the timed region
  LevelRate rate = time_level(sim, program, cycles);
  rate.microops_per_cycle = sim.microops_per_cycle(program);
  return rate;
}

LevelRate rate_compiled(const Model& model, const LoadedProgram& program,
                        SimLevel level, std::uint64_t cycles) {
  CompiledSimulator sim(model, level);
  // Simulation compilation happens once per program (its cost is the
  // subject of E1) and is excluded from the run-time measurement.
  SimulationCompiler compiler(model, sim.decoder());
  sim.load_precompiled(program, compiler.compile(program, level));
  LevelRate rate = time_level(sim, program, cycles);
  if (level == SimLevel::kCompiledStatic)
    rate.microops_per_cycle = sim.microops_per_cycle(program);
  return rate;
}

void print_level(const char* app, const char* level, std::uint64_t cycles,
                 const LevelRate& rate, const LevelRate& interp) {
  char uops[16] = "-";
  if (rate.microops_per_cycle > 0)
    std::snprintf(uops, sizeof uops, "%.2f", rate.microops_per_cycle);
  std::printf("%-8s %-9s %10llu %12s %9.2f %9s %8.1fx\n", app, level,
              static_cast<unsigned long long>(cycles),
              bench::format_rate(rate.cycles_per_second).c_str(), rate.mips,
              uops, rate.cycles_per_second / interp.cycles_per_second);
}

}  // namespace

int main() {
  bench::BenchTarget target;

  std::vector<workloads::Workload> suite = workloads::paper_suite();

  std::printf(
      "E2 / Fig.7 -- simulation speed by level (c62x)\n");
  std::printf("%-8s %-9s %10s %12s %9s %9s %9s\n", "app", "level", "cycles",
              "cycles/s", "MIPS", "uops/cyc", "speedup");
  for (const auto& w : suite) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles = bench::measure_cycles(*target.model, program);
    const LevelRate interp = rate_interp(*target.model, program, cycles);
    const LevelRate cached = rate_cached(*target.model, program, cycles);
    const LevelRate dynamic = rate_compiled(*target.model, program,
                                            SimLevel::kCompiledDynamic, cycles);
    const LevelRate stat = rate_compiled(*target.model, program,
                                         SimLevel::kCompiledStatic, cycles);
    print_level(w.name.c_str(), "interp", cycles, interp, interp);
    print_level(w.name.c_str(), "cached", cycles, cached, interp);
    print_level(w.name.c_str(), "dynamic", cycles, dynamic, interp);
    print_level(w.name.c_str(), "static", cycles, stat, interp);
  }
  std::printf(
      "\npaper: interpretive 2k..9k c/s, compiled 288k..403k c/s, "
      "speedups 47x..170x\n");
  return 0;
}
