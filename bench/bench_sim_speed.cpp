// E2 — paper Fig. 7: simulation speed, compiled vs. interpretive.
//
// The paper measures cycles/second of the generated compiled simulator
// against TI's interpretive sim62x on the three applications: 2k..9k
// cycles/s interpretive vs. 288k..403k compiled = 47x..170x speedup.
// Our interpretive baseline performs the same per-cycle work (fetch,
// decode, operand extraction, tree walk) that sim62x-class simulators do;
// absolute rates differ on modern hosts, the speedup shape is the claim.
//
// Beyond the paper's two points this reports all six simulation levels
// (the hot-trace superblock tier and the native AOT tier included), each
// with cycles/s, MIPS (retired instruction slots per second) and — for the
// micro-op levels — dispatched micro-ops per simulated cycle, so a change
// to the execution core is measured per level, not asserted. The native
// tier gets its own amortization table: the out-of-process compile cost,
// the warm reload cost through the disk artifact cache, and the number of
// runs after which the compile pays for itself against the trace tier.
//
// `--json <path>` additionally writes every table (levels, guard overhead,
// no-fault supervisor overhead, batched lockstep) as a machine-readable
// snapshot (BENCH_sim.json is the checked-in reference).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "resilience/supervisor.hpp"
#include "sim/batched.hpp"
#include "sim/cached_interp.hpp"

using namespace lisasim;

namespace {

struct LevelRate {
  double cycles_per_second = 0;
  double mips = 0;            // retired slots per second / 1e6
  double microops_per_cycle = 0;  // 0 when the level does not dispatch uops
};

struct SpeedRow {
  std::string app;
  std::string level;
  std::uint64_t cycles = 0;
  LevelRate rate;
  double speedup_vs_interp = 0;
};

struct GuardRow {
  std::string app;
  std::string level;
  double off_cycles_per_second = 0;
  double on_cycles_per_second = 0;
  double overhead_percent = 0;
  // Half the interquartile range of the per-pair time ratios, in percent:
  // the noise bound the overhead estimate lives inside.
  double ratio_spread_percent = 0;
  // The spread swamps the signal: overhead_percent is clamped to zero
  // because the measurement cannot distinguish it from zero.
  bool noise_dominated = false;
};

struct SupervisorRow {
  std::string app;
  double raw_cycles_per_second = 0;
  double supervised_cycles_per_second = 0;
  double overhead_percent = 0;
  double ratio_spread_percent = 0;
  bool noise_dominated = false;
};

struct NativeRow {
  std::string app;
  double mips = 0;
  double speedup_vs_trace = 0;     // native cycles/s over trace cycles/s
  double compile_seconds_cold = 0; // blocking AOT round, empty artifact dir
  double load_seconds_warm = 0;    // same round served from the artifact dir
  // Runs after which the cold compile has paid for itself against staying
  // at the trace tier; 0 when native is not faster.
  double break_even_runs = 0;
};

struct BatchedRow {
  std::string app;
  unsigned lanes = 0;
  std::uint64_t cycles = 0;           // per lane, until halt
  double aggregate_cycles_per_second = 0;  // simulated cycles x lanes / s
  double aggregate_mips = 0;               // retired slots x lanes / s / 1e6
  // Wall nanoseconds to advance ONE lane by one simulated cycle at this
  // width. Lockstep batching pays off when this falls below the N=1 row.
  double per_lane_cycle_ns = 0;
};

template <typename Sim>
LevelRate time_level(Sim& sim, const LoadedProgram& program,
                     std::uint64_t cycles) {
  RunResult result;
  const double seconds = bench::time_per_call([&] {
    // Reload state only; decode caches / simulation tables are reused,
    // exactly like the paper's flow where compilation happens once.
    sim.reload(program);
    result = sim.run();
  });
  LevelRate rate;
  rate.cycles_per_second = static_cast<double>(cycles) / seconds;
  rate.mips = static_cast<double>(result.slots_retired) / seconds / 1e6;
  return rate;
}

LevelRate rate_interp(const Model& model, const LoadedProgram& program,
                      std::uint64_t cycles) {
  // The interpretive baseline re-decodes every fetch: load() == reload().
  InterpSimulator sim(model);
  RunResult result;
  const double seconds = bench::time_per_call([&] {
    sim.load(program);
    result = sim.run();
  });
  LevelRate rate;
  rate.cycles_per_second = static_cast<double>(cycles) / seconds;
  rate.mips = static_cast<double>(result.slots_retired) / seconds / 1e6;
  return rate;
}

LevelRate rate_cached(const Model& model, const LoadedProgram& program,
                      std::uint64_t cycles) {
  CachedInterpSimulator sim(model);
  sim.load(program);  // pre-decode once, outside the timed region
  LevelRate rate = time_level(sim, program, cycles);
  rate.microops_per_cycle = sim.microops_per_cycle(program);
  return rate;
}

LevelRate rate_compiled(const Model& model, const LoadedProgram& program,
                        SimLevel level, std::uint64_t cycles) {
  CompiledSimulator sim(model, level);
  // Simulation compilation happens once per program (its cost is the
  // subject of E1) and is excluded from the run-time measurement. The
  // trace tier runs from a static-level table and forms its superblocks
  // online; time_per_call's warm-up run absorbs the formation cost, so
  // the timed region measures steady-state trace dispatch (reload keeps
  // the trace set, mirroring the table reuse of the other levels).
  SimulationCompiler compiler(model, sim.decoder());
  const SimLevel table_level =
      level == SimLevel::kTrace ? SimLevel::kCompiledStatic : level;
  sim.load_precompiled(program, compiler.compile(program, table_level));
  LevelRate rate = time_level(sim, program, cycles);
  if (level == SimLevel::kCompiledStatic || level == SimLevel::kTrace)
    rate.microops_per_cycle = sim.microops_per_cycle(program);
  return rate;
}

LevelRate rate_native(const Model& model, const LoadedProgram& program,
                      std::uint64_t cycles) {
  CompiledSimulator sim(model, SimLevel::kNative);
  NativeConfig config;
  config.blocking = true;
  sim.set_native_config(config);
  SimulationCompiler compiler(model, sim.decoder());
  sim.load_precompiled(program,
                       compiler.compile(program, SimLevel::kCompiledStatic));
  // Run until the region set is quiescent before timing: the trace set
  // grows across the first few runs (chained successors form at
  // boundaries only reachable once their predecessors exist, and heat
  // accumulates across reloads, so a once-per-run block crosses the
  // default hotness threshold only around run ~32), and each formation
  // launches a blocking compile round that must not land inside the
  // timed region. One quiet run is not convergence — demand a full
  // threshold-width window of them. The measurement is steady-state
  // region dispatch; the compile cost is the amortization table below.
  for (int i = 0, quiet = 0; i < 2000 && quiet < 40; ++i) {
    const std::uint64_t rounds_before = sim.native_stats()->rounds;
    sim.reload(program);
    sim.run();
    sim.wait_native_ready();
    quiet = sim.native_stats()->rounds == rounds_before ? quiet + 1 : 0;
  }
  LevelRate rate = time_level(sim, program, cycles);
  rate.microops_per_cycle = sim.microops_per_cycle(program);
  return rate;
}

/// Cold vs warm native AOT cost through a disk artifact cache: the cold
/// load pays the out-of-process compile, the warm load dlopens the cached
/// .so. Both sides include the same table attach and region binding work.
NativeRow rate_native_amortization(const Model& model,
                                  const LoadedProgram& program,
                                  const std::string& app,
                                  std::uint64_t cycles, double trace_cps,
                                  double native_cps, double native_mips,
                                  const std::filesystem::path& artifact_dir) {
  using clock = std::chrono::steady_clock;
  NativeRow row;
  row.app = app;
  row.mips = native_mips;
  row.speedup_vs_trace = trace_cps > 0 ? native_cps / trace_cps : 0;

  SimTableCache cache;
  cache.set_artifact_dir(artifact_dir.string());
  CompiledSimulator seq(model, SimLevel::kCompiledStatic);
  SimulationCompiler compiler(model, seq.decoder());
  const auto table = std::make_shared<const SimTable>(
      compiler.compile(program, SimLevel::kCompiledStatic));

  NativeConfig config;
  config.blocking = true;
  const auto drive_to_quiescence = [&](CompiledSimulator& sim) {
    // The trace set grows across the first ~hot_threshold runs (heat
    // accumulates across reloads); keep running until a full threshold
    // window of runs launches no new compile round, so every region —
    // static spans and all trace bodies, stragglers included — is
    // compiled and published.
    for (int i = 0, quiet = 0; i < 2000 && quiet < 40; ++i) {
      const std::uint64_t rounds_before = sim.native_stats()->rounds;
      sim.reload(program);
      sim.run();
      sim.wait_native_ready();
      quiet = sim.native_stats()->rounds == rounds_before ? quiet + 1 : 0;
    }
  };
  {
    CompiledSimulator sim(model, SimLevel::kNative);
    sim.set_native_config(config);
    sim.set_table_cache(&cache);
    sim.load_precompiled(program, table);  // blocking AOT compile round
    drive_to_quiescence(sim);
    // Total out-of-process compiler wall time across every round, from
    // the runtime's own counter.
    row.compile_seconds_cold =
        static_cast<double>(sim.native_stats()->compile_ns) / 1e9;
  }
  {
    CompiledSimulator sim(model, SimLevel::kNative);
    sim.set_native_config(config);
    sim.set_table_cache(&cache);
    const auto start = clock::now();
    sim.load_precompiled(program, table);  // artifact hit: dlopen only
    row.load_seconds_warm =
        std::chrono::duration<double>(clock::now() - start).count();
    drive_to_quiescence(sim);
    if (sim.native_stats()->compiles > 0)
      std::fprintf(stderr,
                   "warning: %s warm path recompiled %llu round(s)\n",
                   app.c_str(),
                   static_cast<unsigned long long>(
                       sim.native_stats()->compiles));
  }
  const double t_trace = static_cast<double>(cycles) / trace_cps;
  const double t_native = static_cast<double>(cycles) / native_cps;
  if (t_trace > t_native)
    row.break_even_runs = row.compile_seconds_cold / (t_trace - t_native);
  return row;
}

/// One batched measurement: N lockstep lanes of the same program over one
/// pre-built table. All lanes run the identical stimulus, so every stage
/// stays group-executable — the best case the SoA layout is built for.
BatchedRow rate_batched(const Model& model, const LoadedProgram& program,
                        std::shared_ptr<const SimTable> table,
                        const std::string& app, unsigned lanes,
                        std::uint64_t cycles) {
  BatchedSimulator sim(model, lanes);
  sim.load_precompiled(program, table);
  std::uint64_t slots = 0;
  const double seconds = bench::time_per_call([&] {
    sim.reload(program);
    sim.run();
    slots = sim.lane_run(0).result.slots_retired;
  });
  BatchedRow row;
  row.app = app;
  row.lanes = lanes;
  row.cycles = cycles;
  row.aggregate_cycles_per_second =
      static_cast<double>(cycles) * lanes / seconds;
  row.aggregate_mips = static_cast<double>(slots) * lanes / seconds / 1e6;
  row.per_lane_cycle_ns =
      seconds * 1e9 / (static_cast<double>(cycles) * lanes);
  return row;
}

void print_level(const char* app, const char* level, std::uint64_t cycles,
                 const LevelRate& rate, const LevelRate& interp) {
  char uops[16] = "-";
  if (rate.microops_per_cycle > 0)
    std::snprintf(uops, sizeof uops, "%.2f", rate.microops_per_cycle);
  std::printf("%-8s %-9s %10llu %12s %9.2f %9s %8.1fx\n", app, level,
              static_cast<unsigned long long>(cycles),
              bench::format_rate(rate.cycles_per_second).c_str(), rate.mips,
              uops, rate.cycles_per_second / interp.cycles_per_second);
}

/// Guard-off vs guard-on comparison. The guard's per-cycle cost on a
/// clean program (a `writes()==0` check at issue time) is ~1%, which is
/// far below both the scheduler/frequency noise between coarse samples on
/// a shared host and the code/data-layout luck between two separately
/// heap-allocated simulator instances. So measure ONE simulator instance
/// (identical layout on both sides) and toggle the guard policy between
/// runs — a reload re-applies the current policy while keeping the decode
/// cache / simulation table. Single runs are a few ms, so each adjacent
/// off/on pair shares its drift state; the within-pair order alternates
/// to cancel warm-core bias, and the reported overhead is the median of
/// per-pair time ratios over hundreds of pairs.
template <typename Sim>
GuardRow print_guarded(const char* app, const char* level, Sim& sim,
                       const LoadedProgram& program, std::uint64_t cycles) {
  using clock = std::chrono::steady_clock;
  const auto run_once = [&](GuardPolicy policy) {
    const auto start = clock::now();
    sim.set_guard_policy(policy);
    sim.reload(program);
    sim.run();
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  run_once(GuardPolicy::kOff);  // warm-up (page-in, lazy lowering)
  run_once(GuardPolicy::kRecompile);
  const int kPairs = 150;
  std::vector<double> ratios;
  std::vector<double> offs;
  ratios.reserve(kPairs);
  offs.reserve(kPairs);
  for (int i = 0; i < kPairs; ++i) {
    double t_off, t_on;
    if (i % 2 == 0) {
      t_off = run_once(GuardPolicy::kOff);
      t_on = run_once(GuardPolicy::kRecompile);
    } else {
      t_on = run_once(GuardPolicy::kRecompile);
      t_off = run_once(GuardPolicy::kOff);
    }
    offs.push_back(t_off);
    ratios.push_back(t_on / t_off);
  }
  std::sort(ratios.begin(), ratios.end());
  std::sort(offs.begin(), offs.end());
  const double median_ratio = ratios[ratios.size() / 2];
  // Half the interquartile range of the per-pair ratios: the drift band
  // the median overhead estimate lives inside.
  const double spread =
      (ratios[(3 * ratios.size()) / 4] - ratios[ratios.size() / 4]) / 2.0 *
      100.0;
  double overhead = (median_ratio - 1.0) * 100.0;
  // When the band is wider than the effect, the row cannot distinguish
  // the overhead from zero: label it, and clamp the physically
  // impossible negative estimates host drift produces.
  const bool noisy = std::fabs(overhead) <= spread;
  if (noisy && overhead < 0) overhead = 0;
  // Publish one self-consistent triple: off from the median per-pair off
  // time, on derived from off and the overhead estimate, so the row
  // always satisfies off/on == 1 + overhead/100. (Totals would mix two
  // incompatible estimators — a mean rate next to a median overhead.)
  const double off_rate =
      static_cast<double>(cycles) / offs[offs.size() / 2];
  const double on_rate = off_rate / (1.0 + overhead / 100.0);
  std::printf("%-8s %-9s %12s %12s %+9.2f%%%s\n", app, level,
              bench::format_rate(off_rate).c_str(),
              bench::format_rate(on_rate).c_str(), overhead,
              noisy ? "  (noise)" : "");
  GuardRow row;
  row.app = app;
  row.level = level;
  row.off_cycles_per_second = off_rate;
  row.on_cycles_per_second = on_rate;
  row.overhead_percent = overhead;
  row.ratio_spread_percent = spread;
  row.noise_dominated = noisy;
  return row;
}

/// No-fault supervisor overhead at the static level: one checkpoint at
/// cycle 0 plus one engine re-entry per quantum, gated at <= 2% by
/// bench_compare.py. Same paired-ratio methodology as print_guarded —
/// the effect is small, so the raw run and the supervised run alternate
/// within each pair and the median per-pair ratio is reported. Both
/// sides load through a shared table cache, so each supervised iteration
/// pays a cache hit, not a recompile, and the timed region is run() only.
SupervisorRow print_supervised(const char* app, const Model& model,
                               const LoadedProgram& program,
                               std::uint64_t cycles) {
  using clock = std::chrono::steady_clock;
  SimTableCache cache;
  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.cache = &cache;
  CompiledSimulator raw(model, SimLevel::kCompiledStatic);
  raw.set_table_cache(&cache);
  raw.load(program);
  const auto run_raw = [&] {
    const auto start = clock::now();
    raw.reload(program);
    raw.run();
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  const auto run_supervised = [&] {
    RunSupervisor supervisor(model, program, config);  // cache hit
    const auto start = clock::now();
    supervisor.run();
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  run_raw();  // warm-up (page-in, cache population)
  run_supervised();
  const int kPairs = 150;
  std::vector<double> ratios;
  std::vector<double> raws;
  ratios.reserve(kPairs);
  raws.reserve(kPairs);
  for (int i = 0; i < kPairs; ++i) {
    double t_raw, t_sup;
    if (i % 2 == 0) {
      t_raw = run_raw();
      t_sup = run_supervised();
    } else {
      t_sup = run_supervised();
      t_raw = run_raw();
    }
    raws.push_back(t_raw);
    ratios.push_back(t_sup / t_raw);
  }
  std::sort(ratios.begin(), ratios.end());
  std::sort(raws.begin(), raws.end());
  const double median_ratio = ratios[ratios.size() / 2];
  const double spread =
      (ratios[(3 * ratios.size()) / 4] - ratios[ratios.size() / 4]) / 2.0 *
      100.0;
  double overhead = (median_ratio - 1.0) * 100.0;
  const bool noisy = std::fabs(overhead) <= spread;
  if (noisy && overhead < 0) overhead = 0;
  const double raw_rate = static_cast<double>(cycles) / raws[raws.size() / 2];
  const double sup_rate = raw_rate / (1.0 + overhead / 100.0);
  std::printf("%-8s %12s %12s %+9.2f%%%s\n", app,
              bench::format_rate(raw_rate).c_str(),
              bench::format_rate(sup_rate).c_str(), overhead,
              noisy ? "  (noise)" : "");
  SupervisorRow row;
  row.app = app;
  row.raw_cycles_per_second = raw_rate;
  row.supervised_cycles_per_second = sup_rate;
  row.overhead_percent = overhead;
  row.ratio_spread_percent = spread;
  row.noise_dominated = noisy;
  return row;
}

void write_json(const char* path, const std::vector<SpeedRow>& speed,
                const std::vector<GuardRow>& guard,
                const std::vector<SupervisorRow>& supervisor,
                const std::vector<BatchedRow>& batched,
                const std::vector<NativeRow>& native) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_speed\",\n  \"target\": \"c62x\",\n");
  std::fprintf(f, "  \"levels\": [\n");
  for (std::size_t i = 0; i < speed.size(); ++i) {
    const SpeedRow& r = speed[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"level\": \"%s\", \"cycles\": %llu, "
                 "\"cycles_per_second\": %.0f, \"mips\": %.3f, "
                 "\"uops_per_cycle\": %.3f, \"speedup_vs_interp\": %.2f}%s\n",
                 r.app.c_str(), r.level.c_str(),
                 static_cast<unsigned long long>(r.cycles),
                 r.rate.cycles_per_second, r.rate.mips,
                 r.rate.microops_per_cycle, r.speedup_vs_interp,
                 i + 1 < speed.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"guard_overhead\": [\n");
  for (std::size_t i = 0; i < guard.size(); ++i) {
    const GuardRow& r = guard[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"level\": \"%s\", "
                 "\"guard_off_cycles_per_second\": %.0f, "
                 "\"guard_on_cycles_per_second\": %.0f, "
                 "\"overhead_percent\": %.2f, "
                 "\"ratio_spread_percent\": %.2f, "
                 "\"noise_dominated\": %s}%s\n",
                 r.app.c_str(), r.level.c_str(), r.off_cycles_per_second,
                 r.on_cycles_per_second, r.overhead_percent,
                 r.ratio_spread_percent,
                 r.noise_dominated ? "true" : "false",
                 i + 1 < guard.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"supervisor\": [\n");
  for (std::size_t i = 0; i < supervisor.size(); ++i) {
    const SupervisorRow& r = supervisor[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", "
                 "\"raw_cycles_per_second\": %.0f, "
                 "\"supervised_cycles_per_second\": %.0f, "
                 "\"overhead_percent\": %.2f, "
                 "\"ratio_spread_percent\": %.2f, "
                 "\"noise_dominated\": %s}%s\n",
                 r.app.c_str(), r.raw_cycles_per_second,
                 r.supervised_cycles_per_second, r.overhead_percent,
                 r.ratio_spread_percent, r.noise_dominated ? "true" : "false",
                 i + 1 < supervisor.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"native\": [\n");
  for (std::size_t i = 0; i < native.size(); ++i) {
    const NativeRow& r = native[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"mips\": %.3f, "
                 "\"speedup_vs_trace\": %.2f, "
                 "\"compile_seconds_cold\": %.3f, "
                 "\"load_seconds_warm\": %.4f, "
                 "\"break_even_runs\": %.1f}%s\n",
                 r.app.c_str(), r.mips, r.speedup_vs_trace,
                 r.compile_seconds_cold, r.load_seconds_warm,
                 r.break_even_runs, i + 1 < native.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"batched\": [\n");
  for (std::size_t i = 0; i < batched.size(); ++i) {
    const BatchedRow& r = batched[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"lanes\": %u, \"cycles\": %llu, "
                 "\"aggregate_cycles_per_second\": %.0f, "
                 "\"aggregate_mips\": %.3f, "
                 "\"per_lane_cycle_ns\": %.3f}%s\n",
                 r.app.c_str(), r.lanes,
                 static_cast<unsigned long long>(r.cycles),
                 r.aggregate_cycles_per_second, r.aggregate_mips,
                 r.per_lane_cycle_ns, i + 1 < batched.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  bench::BenchTarget target;

  std::vector<workloads::Workload> suite = workloads::paper_suite();
  std::vector<SpeedRow> speed_rows;
  std::vector<GuardRow> guard_rows;
  std::vector<NativeRow> native_rows;
  const bool have_native = NativeRuntime::toolchain_available();
  struct AppRates {
    std::uint64_t cycles = 0;
    double trace_cps = 0;
    double native_cps = 0;
    double native_mips = 0;
  };
  std::map<std::string, AppRates> app_rates;

  std::printf(
      "E2 / Fig.7 -- simulation speed by level (c62x)\n");
  std::printf("%-8s %-9s %10s %12s %9s %9s %9s\n", "app", "level", "cycles",
              "cycles/s", "MIPS", "uops/cyc", "speedup");
  for (const auto& w : suite) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles = bench::measure_cycles(*target.model, program);
    const LevelRate interp = rate_interp(*target.model, program, cycles);
    const LevelRate cached = rate_cached(*target.model, program, cycles);
    const LevelRate dynamic = rate_compiled(*target.model, program,
                                            SimLevel::kCompiledDynamic, cycles);
    const LevelRate stat = rate_compiled(*target.model, program,
                                         SimLevel::kCompiledStatic, cycles);
    const LevelRate trace =
        rate_compiled(*target.model, program, SimLevel::kTrace, cycles);
    const LevelRate native =
        have_native ? rate_native(*target.model, program, cycles)
                    : LevelRate{};
    const struct { const char* name; const LevelRate& rate; } rows[] = {
        {"interp", interp}, {"cached", cached},   {"dynamic", dynamic},
        {"static", stat},   {"trace", trace},     {"native", native},
    };
    for (const auto& row : rows) {
      if (row.rate.cycles_per_second == 0) continue;  // native w/o toolchain
      print_level(w.name.c_str(), row.name, cycles, row.rate, interp);
      speed_rows.push_back(
          {w.name, row.name, cycles, row.rate,
           row.rate.cycles_per_second / interp.cycles_per_second});
    }
    app_rates[w.name] = {cycles, trace.cycles_per_second,
                         native.cycles_per_second, native.mips};
  }
  std::printf(
      "\npaper: interpretive 2k..9k c/s, compiled 288k..403k c/s, "
      "speedups 47x..170x\n");

  // Native AOT amortization: what the out-of-process compile costs, what
  // the disk artifact cache gives back on a warm reload, and how many
  // runs it takes for the compile to beat staying at the trace tier.
  if (have_native) {
    std::printf(
        "\nnative AOT -- compile cost vs artifact cache (%s)\n",
        NativeRuntime::toolchain().c_str());
    std::printf("%-8s %9s %9s %13s %12s %11s\n", "app", "MIPS", "vs trace",
                "cold compile", "warm load", "break-even");
    const std::filesystem::path artifact_dir =
        std::filesystem::temp_directory_path() / "lisasim-bench-artifacts";
    std::filesystem::remove_all(artifact_dir);
    for (const auto& w : suite) {
      const LoadedProgram program = target.assemble(w);
      const AppRates& rates = app_rates[w.name];
      const NativeRow row = rate_native_amortization(
          *target.model, program, w.name, rates.cycles, rates.trace_cps,
          rates.native_cps, rates.native_mips, artifact_dir);
      char break_even[24] = "-";
      if (row.break_even_runs > 0)
        std::snprintf(break_even, sizeof break_even, "%.1f runs",
                      row.break_even_runs);
      std::printf("%-8s %9.2f %8.2fx %11.0f ms %9.1f ms %11s\n",
                  row.app.c_str(), row.mips, row.speedup_vs_trace,
                  row.compile_seconds_cold * 1e3, row.load_seconds_warm * 1e3,
                  break_even);
      native_rows.push_back(row);
    }
    std::filesystem::remove_all(artifact_dir);
  } else {
    std::printf(
        "\nnative AOT: no out-of-process C++ toolchain, section skipped\n");
  }

  // Guard overhead: the same clean (never self-modifying) programs with
  // write guards armed. The guard hook fires only on program-memory
  // writes; on a clean run the per-issue cost is one `writes() == 0` load,
  // so the table-based levels should stay within a couple of percent of
  // their unguarded rates.
  std::printf(
      "\nguard overhead -- GuardPolicy::kRecompile armed on unmodified "
      "programs\n");
  std::printf("%-8s %-9s %12s %12s %10s\n", "app", "level", "guard-off",
              "guard-on", "overhead");
  const Model& model = *target.model;
  for (const auto& w : suite) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles = bench::measure_cycles(model, program);
    {
      CachedInterpSimulator sim(model);
      sim.load(program);
      guard_rows.push_back(
          print_guarded(w.name.c_str(), "cached", sim, program, cycles));
    }
    for (const SimLevel level :
         {SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic,
          SimLevel::kTrace}) {
      CompiledSimulator sim(model, level);
      SimulationCompiler compiler(model, sim.decoder());
      const SimLevel table_level =
          level == SimLevel::kTrace ? SimLevel::kCompiledStatic : level;
      sim.load_precompiled(program, compiler.compile(program, table_level));
      const char* name = level == SimLevel::kCompiledDynamic ? "dynamic"
                         : level == SimLevel::kCompiledStatic ? "static"
                                                              : "trace";
      guard_rows.push_back(
          print_guarded(w.name.c_str(), name, sim, program, cycles));
    }
  }
  // No-fault supervisor overhead: the resilient RunSupervisor wrapping the
  // static level on the same clean programs. The recovery machinery only
  // costs an initial checkpoint and a quantum re-entry when nothing
  // faults; bench_compare.py gates the overhead at <= 2%.
  std::printf(
      "\nsupervisor overhead -- RunSupervisor at the static level, no "
      "faults\n");
  std::printf("%-8s %12s %12s %10s\n", "app", "raw", "supervised",
              "overhead");
  std::vector<SupervisorRow> supervisor_rows;
  for (const auto& w : suite) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles = bench::measure_cycles(model, program);
    supervisor_rows.push_back(
        print_supervised(w.name.c_str(), model, program, cycles));
  }

  // Batched lockstep throughput: the same applications, one shared static
  // table, N identical lanes. The figure of merit is the wall cost to
  // advance one lane one cycle — amortizing dispatch and issue across the
  // lane group should push it strictly below the N=1 row by N=16.
  std::printf(
      "\nbatched lockstep -- N lanes over one shared static table\n");
  std::printf("%-8s %6s %10s %14s %10s %14s\n", "app", "lanes", "cycles",
              "agg cycles/s", "agg MIPS", "ns/lane-cycle");
  std::vector<BatchedRow> batched_rows;
  for (const auto& w : suite) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles = bench::measure_cycles(model, program);
    CompiledSimulator seq(model, SimLevel::kCompiledStatic);
    SimulationCompiler compiler(model, seq.decoder());
    seq.load_precompiled(program,
                         compiler.compile(program, SimLevel::kCompiledStatic));
    const std::shared_ptr<const SimTable> table = seq.table_ptr();
    for (const unsigned lanes : {1u, 4u, 16u, 64u}) {
      const BatchedRow row =
          rate_batched(model, program, table, w.name, lanes, cycles);
      std::printf("%-8s %6u %10llu %14s %10.2f %14.3f\n", row.app.c_str(),
                  row.lanes, static_cast<unsigned long long>(row.cycles),
                  bench::format_rate(row.aggregate_cycles_per_second).c_str(),
                  row.aggregate_mips, row.per_lane_cycle_ns);
      batched_rows.push_back(row);
    }
  }

  if (json_path != nullptr)
    write_json(json_path, speed_rows, guard_rows, supervisor_rows,
               batched_rows, native_rows);
  return 0;
}
