// E2 — paper Fig. 7: simulation speed, compiled vs. interpretive.
//
// The paper measures cycles/second of the generated compiled simulator
// against TI's interpretive sim62x on the three applications: 2k..9k
// cycles/s interpretive vs. 288k..403k compiled = 47x..170x speedup.
// Our interpretive baseline performs the same per-cycle work (fetch,
// decode, operand extraction, tree walk) that sim62x-class simulators do;
// absolute rates differ on modern hosts, the speedup shape is the claim.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace lisasim;

namespace {

double cycles_per_second_interp(const Model& model,
                                const LoadedProgram& program,
                                std::uint64_t cycles) {
  InterpSimulator sim(model);
  const double seconds = bench::time_per_call([&] {
    sim.load(program);
    sim.run();
  });
  return static_cast<double>(cycles) / seconds;
}

double cycles_per_second_compiled(const Model& model,
                                  const LoadedProgram& program,
                                  SimLevel level, std::uint64_t cycles) {
  CompiledSimulator sim(model, level);
  // Simulation compilation happens once per program (its cost is the
  // subject of E1) and is excluded from the run-time measurement.
  SimulationCompiler compiler(model, sim.decoder());
  sim.load_precompiled(program, compiler.compile(program, level));
  const double seconds = bench::time_per_call([&] {
    // Reload state only; the simulation table is reused, exactly like the
    // paper's flow where compilation happens once per program.
    sim.reload(program);
    sim.run();
  });
  return static_cast<double>(cycles) / seconds;
}

}  // namespace

int main() {
  bench::BenchTarget target;

  std::vector<workloads::Workload> suite = workloads::paper_suite();

  std::printf(
      "E2 / Fig.7 -- simulation speed: compiled vs interpretive (c62x)\n");
  std::printf("%-8s %10s %14s %14s %14s %9s %9s\n", "app", "cycles",
              "interp c/s", "dynamic c/s", "static c/s", "dyn-x", "stat-x");
  for (const auto& w : suite) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles = bench::measure_cycles(*target.model, program);
    const double interp =
        cycles_per_second_interp(*target.model, program, cycles);
    const double dynamic = cycles_per_second_compiled(
        *target.model, program, SimLevel::kCompiledDynamic, cycles);
    const double stat = cycles_per_second_compiled(
        *target.model, program, SimLevel::kCompiledStatic, cycles);
    std::printf("%-8s %10llu %14s %14s %14s %8.1fx %8.1fx\n", w.name.c_str(),
                static_cast<unsigned long long>(cycles),
                bench::format_rate(interp).c_str(),
                bench::format_rate(dynamic).c_str(),
                bench::format_rate(stat).c_str(), dynamic / interp,
                stat / interp);
  }
  std::printf(
      "\npaper: interpretive 2k..9k c/s, compiled 288k..403k c/s, "
      "speedups 47x..170x\n");
  return 0;
}
