// Shared helpers for the paper-reproduction benchmarks: wall-clock timing,
// repetition control and table formatting. Each bench binary regenerates
// one table/figure of the paper (see EXPERIMENTS.md) and prints it in the
// paper's units.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"
#include "targets/c62x.hpp"
#include "workloads/workloads.hpp"

namespace lisasim::bench {

/// Wall-clock seconds of `fn()`, repeated until `min_seconds` of total run
/// time accumulate; returns seconds per call.
inline double time_per_call(const std::function<void()>& fn,
                            double min_seconds = 0.3) {
  using clock = std::chrono::steady_clock;
  // Warm-up call (page-in, cache warm).
  fn();
  int reps = 1;
  for (;;) {
    const auto start = clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start).count();
    if (elapsed >= min_seconds) return elapsed / reps;
    reps = elapsed <= 0 ? reps * 8
                        : static_cast<int>(reps * (min_seconds / elapsed) + 1);
  }
}

/// Human-friendly rate like "403k" or "12.3M" (per second).
inline std::string format_rate(double per_second) {
  char buffer[32];
  if (per_second >= 1e9)
    std::snprintf(buffer, sizeof buffer, "%.2fG", per_second / 1e9);
  else if (per_second >= 1e6)
    std::snprintf(buffer, sizeof buffer, "%.2fM", per_second / 1e6);
  else if (per_second >= 1e3)
    std::snprintf(buffer, sizeof buffer, "%.1fk", per_second / 1e3);
  else
    std::snprintf(buffer, sizeof buffer, "%.1f", per_second);
  return buffer;
}

struct BenchTarget {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;

  BenchTarget() {
    model = compile_model_source_or_throw(targets::c62x_model_source(),
                                          "c62x");
    decoder = std::make_unique<Decoder>(*model);
  }

  LoadedProgram assemble(const workloads::Workload& w) const {
    return assemble_or_throw(*model, *decoder, w.asm_source, w.name);
  }
};

/// Cycles executed by `program` until halt (same at every level).
inline std::uint64_t measure_cycles(const Model& model,
                                    const LoadedProgram& program) {
  CompiledSimulator sim(model, SimLevel::kCompiledStatic);
  sim.load(program);
  return sim.run().cycles;
}

}  // namespace lisasim::bench
