// E3 — paper §6 text: machine-model translation time.
//
// "The complete translation of this model with the LISA compiler and the
// simulation compiler generator takes less than 35 seconds on a Sparc
// Ultra 10" — versus >12 months for the hand-written C54x simulator the
// same designer built earlier. We time the full tool-generation path for
// both shipped models: parse + analyze (LISA compiler), data-base dump +
// reload (Fig. 5 flow), and decoder generation (the simulation-compiler
// generator's decode machinery).
#include <cstdio>

#include "bench_util.hpp"
#include "model/database.hpp"
#include "targets/c54x.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

namespace {

void report(const char* name, std::string_view source) {
  const double compile_s = bench::time_per_call([&] {
    auto model = compile_model_source_or_throw(source, name);
  });
  auto model = compile_model_source_or_throw(source, name);

  const double decoder_s =
      bench::time_per_call([&] { Decoder decoder(*model); });

  const double database_s = bench::time_per_call([&] {
    const std::string dump = dump_model(*model);
    DiagnosticEngine diags;
    auto reloaded = load_model(dump, diags);
    if (!reloaded) std::abort();
  });

  Decoder decoder(*model);
  std::printf("%-10s %6zu ops %5zu coded   %10.3f ms %10.3f ms %10.3f ms\n",
              name, decoder.stats().operations,
              decoder.stats().coding_operations, compile_s * 1e3,
              decoder_s * 1e3, database_s * 1e3);
}

}  // namespace

int main() {
  std::printf("E3 -- machine-model translation time (paper: < 35 s total "
              "for the C6201 model; 12+ months for a hand-written "
              "simulator)\n");
  std::printf("%-10s %21s %13s %13s %13s\n", "model", "size",
              "compile", "decoder-gen", "database");
  report("tinydsp", targets::tinydsp_model_source());
  report("c54x", targets::c54x_model_source());
  report("c62x", targets::c62x_model_source());
  return 0;
}
