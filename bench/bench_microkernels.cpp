// Micro-benchmarks of the tool components (google-benchmark): run-time
// decoding cost (what the interpretive simulator pays per fetch), schedule
// specialization and micro-op lowering cost (what the simulation compiler
// pays once per instruction), and the per-stage execution cost of
// specialized trees vs. micro-ops. These decompose the E2/E4 end-to-end
// numbers.
#include <benchmark/benchmark.h>

#include "asm/assembler.hpp"
#include "behavior/fuse.hpp"
#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"
#include "behavior/specialize.hpp"
#include "model/sema.hpp"
#include "sim/interp.hpp"
#include "targets/c62x.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace lisasim;

struct Fixture {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;
  LoadedProgram program;
  std::vector<std::int64_t> words;

  Fixture() {
    model = compile_model_source_or_throw(targets::c62x_model_source(),
                                          "c62x");
    decoder = std::make_unique<Decoder>(*model);
    const auto w = workloads::make_adpcm(64);
    program = assemble_or_throw(*model, *decoder, w.asm_source, "adpcm");
    words.assign(program.words.begin(), program.words.end());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_DecodePacket(benchmark::State& state) {
  auto& f = fixture();
  std::uint64_t index = 0;
  for (auto _ : state) {
    DecodedPacket packet = f.decoder->decode_packet(f.words, index);
    benchmark::DoNotOptimize(packet.slots.data());
    index = (index + packet.words) % (f.words.size() - 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodePacket);

void BM_SpecializeSchedule(benchmark::State& state) {
  auto& f = fixture();
  Specializer specializer(*f.model);
  std::uint64_t index = 0;
  for (auto _ : state) {
    DecodedPacket packet = f.decoder->decode_packet(f.words, index);
    PacketSchedule schedule = specializer.schedule_packet(packet);
    benchmark::DoNotOptimize(schedule.stage_programs.data());
    index = (index + packet.words) % (f.words.size() - 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecializeSchedule);

void BM_LowerToMicroops(benchmark::State& state) {
  auto& f = fixture();
  Specializer specializer(*f.model);
  DecodedPacket packet = f.decoder->decode_packet(f.words, 6);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  for (auto _ : state) {
    for (const auto& program : schedule.stage_programs) {
      MicroProgram mp = lower_to_microops(program);
      benchmark::DoNotOptimize(mp.ops.data());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LowerToMicroops);

void BM_ExecSpecializedTree(benchmark::State& state) {
  auto& f = fixture();
  Specializer specializer(*f.model);
  ProcessorState pstate(*f.model);
  PipelineControl control;
  Evaluator eval(pstate, control);
  DecodedPacket packet = f.decoder->decode_packet(f.words, 6);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  const int e1 = f.model->pipeline.stage_index("E1");
  const SpecProgram& program =
      schedule.stage_programs[static_cast<std::size_t>(e1)];
  for (auto _ : state) {
    eval.exec_flat(program.stmts, program.num_locals);
    control.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecSpecializedTree);

void BM_ExecMicroops(benchmark::State& state) {
  auto& f = fixture();
  Specializer specializer(*f.model);
  ProcessorState pstate(*f.model);
  PipelineControl control;
  DecodedPacket packet = f.decoder->decode_packet(f.words, 6);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  const int e1 = f.model->pipeline.stage_index("E1");
  MicroProgram mp = lower_to_microops(
      schedule.stage_programs[static_cast<std::size_t>(e1)]);
  std::vector<std::int64_t> temps;
  for (auto _ : state) {
    run_microops(mp, pstate, control, temps);
    control.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecMicroops);

void BM_ExecMicroopsFused(benchmark::State& state) {
  // Same stage program as BM_ExecMicroops, but run through the full
  // optimizer (const-fold, DCE, register caching, superinstruction
  // fusion). The delta against BM_ExecMicroops is the per-execution win
  // the fused encodings buy; the op-count reduction is reported as a
  // counter.
  auto& f = fixture();
  Specializer specializer(*f.model);
  ProcessorState pstate(*f.model);
  PipelineControl control;
  DecodedPacket packet = f.decoder->decode_packet(f.words, 6);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  const int e1 = f.model->pipeline.stage_index("E1");
  MicroProgram mp = lower_to_microops(
      schedule.stage_programs[static_cast<std::size_t>(e1)]);
  const double unfused_ops = static_cast<double>(mp.ops.size());
  optimize_microops(mp, f.model.get());
  std::vector<std::int64_t> temps;
  for (auto _ : state) {
    run_microops(mp, pstate, control, temps);
    control.clear();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["ops_before"] = unfused_ops;
  state.counters["ops_after"] = static_cast<double>(mp.ops.size());
}
BENCHMARK(BM_ExecMicroopsFused);

void BM_FuseMicroops(benchmark::State& state) {
  // Cost of the fusion pass itself — what the simulation compiler pays
  // once per stage program on top of lowering.
  auto& f = fixture();
  Specializer specializer(*f.model);
  DecodedPacket packet = f.decoder->decode_packet(f.words, 6);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  const int e1 = f.model->pipeline.stage_index("E1");
  const MicroProgram lowered = lower_to_microops(
      schedule.stage_programs[static_cast<std::size_t>(e1)]);
  for (auto _ : state) {
    MicroProgram mp = lowered;
    fuse_microops(mp);
    benchmark::DoNotOptimize(mp.ops.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuseMicroops);

void BM_InterpRunOp(benchmark::State& state) {
  auto& f = fixture();
  ProcessorState pstate(*f.model);
  PipelineControl control;
  Evaluator eval(pstate, control);
  // An activation-free instruction (run_op with a null sink).
  const LoadedProgram add = assemble_or_throw(
      *f.model, *f.decoder, "[B1] ADD A1, A2, A3\nHALT\n", "add");
  DecodedNodePtr node = f.decoder->decode(add.words[0]);
  std::vector<std::pair<const DecodedNode*, int>> autos;
  collect_auto_ops(*node, autos);
  for (auto _ : state) {
    for (const auto& [node, stage] : autos) {
      (void)stage;
      eval.run_op(*node, nullptr);
    }
    control.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpRunOp);

}  // namespace

BENCHMARK_MAIN();
