// E1 — paper Fig. 6: simulation compilation speed.
//
// The paper reports the time to translate object code of the three
// applications into compiled simulations, and finds the *compilation speed*
// (instructions per second) essentially flat (530..560 instr/s on a Sparc
// Ultra 10) regardless of application size — i.e. simulation compilation is
// linear in program size. We reproduce the series: per application and
// size, the simulation-compile time, the instruction count and the derived
// speed; the expected shape is a flat instr/s column.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/simcompiler.hpp"

using namespace lisasim;

int main() {
  bench::BenchTarget target;
  SimulationCompiler compiler(*target.model, *target.decoder);

  struct Row {
    std::string app;
    workloads::Workload workload;
  };
  std::vector<Row> rows;
  // Size axis: the paper's three applications, small -> large (the GSM
  // coder "nearly fills the internal memory"; our x32 repeat plays the
  // same role against the 16k-word pmem). Sizes span ~30x so per-program
  // fixed costs are visible if they exist.
  rows.push_back({"fir x4", workloads::make_fir(16, 64, 4)});
  rows.push_back({"fir x16", workloads::make_fir(16, 64, 16)});
  rows.push_back({"adpcm x8", workloads::make_adpcm(256, 8)});
  rows.push_back({"adpcm x32", workloads::make_adpcm(256, 32)});
  rows.push_back({"gsm x8", workloads::make_gsm(160, 8)});
  rows.push_back({"gsm x16", workloads::make_gsm(160, 16)});
  rows.push_back({"gsm x32", workloads::make_gsm(160, 32)});

  std::printf("E1 / Fig.6 -- simulation compilation speed (c62x model)\n");
  std::printf("%-14s %12s %12s %14s %14s\n", "application", "instructions",
              "time [ms]", "instr/s", "microops");
  double min_speed = 1e300, max_speed = 0;
  for (const auto& row : rows) {
    const LoadedProgram program = target.assemble(row.workload);
    SimCompileStats stats;
    const double seconds = bench::time_per_call([&] {
      stats = {};
      (void)compiler.compile(program, SimLevel::kCompiledStatic, &stats);
    });
    const double speed = static_cast<double>(stats.instructions) / seconds;
    min_speed = std::min(min_speed, speed);
    max_speed = std::max(max_speed, speed);
    std::printf("%-14s %12zu %12.3f %14s %14zu\n", row.app.c_str(),
                stats.instructions, seconds * 1e3,
                bench::format_rate(speed).c_str(), stats.microops);
  }
  std::printf(
      "\nshape check: compilation speed spread max/min = %.2fx "
      "(paper: 560/530 = 1.06x, i.e. flat/linear)\n",
      max_speed / min_speed);
  return 0;
}
