// E1 — paper Fig. 6: simulation compilation speed.
//
// The paper reports the time to translate object code of the three
// applications into compiled simulations, and finds the *compilation speed*
// (instructions per second) essentially flat (530..560 instr/s on a Sparc
// Ultra 10) regardless of application size — i.e. simulation compilation is
// linear in program size. We reproduce the series: per application and
// size, the simulation-compile time, the instruction count and the derived
// speed; the expected shape is a flat instr/s column.
//
// Two extensions beyond the paper: (a) the sharded parallel build — the
// per-location translation is embarrassingly parallel, so the thread sweep
// should scale with cores while staying bit-identical to the sequential
// table; (b) the simulation-table cache — a warm reload of an unchanged
// program skips translation entirely, which is the dominant pattern in
// benchmark repetitions.
// `--json <path>` writes the three tables as a machine-readable snapshot
// (BENCH_compile.json is the checked-in reference).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/simcompiler.hpp"
#include "sim/table_cache.hpp"
#include "support/thread_pool.hpp"

using namespace lisasim;

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  bench::BenchTarget target;
  SimulationCompiler compiler(*target.model, *target.decoder);

  struct Row {
    std::string app;
    workloads::Workload workload;
  };
  std::vector<Row> rows;
  // Size axis: the paper's three applications, small -> large (the GSM
  // coder "nearly fills the internal memory"; our x32 repeat plays the
  // same role against the 16k-word pmem). Sizes span ~30x so per-program
  // fixed costs are visible if they exist.
  rows.push_back({"fir x4", workloads::make_fir(16, 64, 4)});
  rows.push_back({"fir x16", workloads::make_fir(16, 64, 16)});
  rows.push_back({"adpcm x8", workloads::make_adpcm(256, 8)});
  rows.push_back({"adpcm x32", workloads::make_adpcm(256, 32)});
  rows.push_back({"gsm x8", workloads::make_gsm(160, 8)});
  rows.push_back({"gsm x16", workloads::make_gsm(160, 16)});
  rows.push_back({"gsm x32", workloads::make_gsm(160, 32)});

  struct JsonRow {
    std::string app;
    std::size_t instructions = 0;
    double compile_ms = 0;
    double instructions_per_second = 0;
    std::size_t microops = 0;
  };
  std::vector<JsonRow> json_rows;

  std::printf("E1 / Fig.6 -- simulation compilation speed (c62x model)\n");
  std::printf("%-14s %12s %12s %14s %14s\n", "application", "instructions",
              "time [ms]", "instr/s", "microops");
  double min_speed = 1e300, max_speed = 0;
  for (const auto& row : rows) {
    const LoadedProgram program = target.assemble(row.workload);
    SimCompileStats stats;
    const double seconds = bench::time_per_call([&] {
      stats = {};
      (void)compiler.compile(program, SimLevel::kCompiledStatic, &stats);
    });
    const double speed = static_cast<double>(stats.instructions) / seconds;
    min_speed = std::min(min_speed, speed);
    max_speed = std::max(max_speed, speed);
    std::printf("%-14s %12zu %12.3f %14s %14zu\n", row.app.c_str(),
                stats.instructions, seconds * 1e3,
                bench::format_rate(speed).c_str(), stats.microops);
    json_rows.push_back(
        {row.app, stats.instructions, seconds * 1e3, speed, stats.microops});
  }
  std::printf(
      "\nshape check: compilation speed spread max/min = %.2fx "
      "(paper: 560/530 = 1.06x, i.e. flat/linear)\n",
      max_speed / min_speed);

  // ---- parallel sharded build (GSM workload) ----------------------------
  const workloads::Workload gsm = workloads::make_gsm(160, 32);
  const LoadedProgram gsm_program = target.assemble(gsm);
  const SimTable reference =
      compiler.compile(gsm_program, SimLevel::kCompiledStatic, nullptr, {1});
  const std::string reference_signature = reference.signature();

  std::printf(
      "\nparallel simulation compilation, gsm x32 "
      "(%u hardware thread%s online)\n",
      ThreadPool::hardware_threads(),
      ThreadPool::hardware_threads() == 1 ? "" : "s");
  std::printf("%-8s %12s %10s %12s\n", "threads", "time [ms]", "speedup",
              "identical");
  struct ParallelRow {
    unsigned threads = 0;
    double compile_ms = 0;
    double speedup = 0;
    bool identical = false;
  };
  std::vector<ParallelRow> parallel_rows;
  double t1 = 0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SimCompileOptions options;
    options.threads = threads;
    SimTable table;
    const double seconds = bench::time_per_call([&] {
      table = compiler.compile(gsm_program, SimLevel::kCompiledStatic,
                               nullptr, options);
    });
    if (threads == 1) t1 = seconds;
    const bool identical = table.signature() == reference_signature;
    std::printf("%-8u %12.3f %9.2fx %12s\n", threads, seconds * 1e3,
                t1 / seconds, identical ? "yes" : "NO");
    parallel_rows.push_back({threads, seconds * 1e3, t1 / seconds, identical});
  }
  std::printf("(speedup tracks the physical core count; the table is "
              "bit-identical at every thread count)\n");

  // ---- table cache: cold compile vs warm reload -------------------------
  SimTableCache cache;
  SimulationCompiler cached_compiler(*target.model, *target.decoder);
  const double cold = bench::time_per_call([&] {
    cache.clear();
    (void)cache.get_or_compile(cached_compiler, *target.model, gsm_program,
                               SimLevel::kCompiledStatic);
  });
  (void)cache.get_or_compile(cached_compiler, *target.model, gsm_program,
                             SimLevel::kCompiledStatic);
  const double warm = bench::time_per_call([&] {
    (void)cache.get_or_compile(cached_compiler, *target.model, gsm_program,
                               SimLevel::kCompiledStatic);
  });
  std::printf(
      "\ntable cache, gsm x32: cold compile %.3f ms, warm reload %.4f ms "
      "(%.2f%% of cold, %.0fx)\n",
      cold * 1e3, warm * 1e3, 100.0 * warm / cold, cold / warm);

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f, "{\n  \"bench\": \"compile_speed\",\n  \"target\": \"c62x\",\n");
    std::fprintf(f, "  \"applications\": [\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"instructions\": %zu, "
                   "\"compile_ms\": %.3f, \"instructions_per_second\": %.0f, "
                   "\"microops\": %zu}%s\n",
                   r.app.c_str(), r.instructions, r.compile_ms,
                   r.instructions_per_second, r.microops,
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"speed_spread_max_over_min\": %.3f,\n",
                 max_speed / min_speed);
    std::fprintf(f, "  \"parallel_gsm_x32\": [\n");
    for (std::size_t i = 0; i < parallel_rows.size(); ++i) {
      const auto& r = parallel_rows[i];
      std::fprintf(f,
                   "    {\"threads\": %u, \"compile_ms\": %.3f, "
                   "\"speedup\": %.2f, \"identical\": %s}%s\n",
                   r.threads, r.compile_ms, r.speedup,
                   r.identical ? "true" : "false",
                   i + 1 < parallel_rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"table_cache_gsm_x32\": {\"cold_ms\": %.3f, "
                 "\"warm_ms\": %.4f}\n}\n",
                 cold * 1e3, warm * 1e3);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
