// E4 — paper §3: levels of compiled simulation.
//
// "Between the two extremes of fully compiled and fully interpretive
// simulation, partial implementation of the compiled principle is
// possible." This ablation quantifies each step on the same workloads:
//
//   interpretive      : decode + sequence + walk trees, every cycle
//   compiled-dynamic  : compile-time decoding + operation sequencing
//                       (the paper's implemented system)
//   compiled-static   : + operation instantiation (micro-op unfolding,
//                       the paper's future-work third step)
//
// Reported as cycles/s and as speedup over the interpretive baseline, per
// workload, plus a decomposition hint: the dynamic/interp ratio isolates
// what compile-time decoding+sequencing buys; static/dynamic isolates
// instantiation.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/cached_interp.hpp"

using namespace lisasim;

namespace {

double run_rate(const Model& model, const LoadedProgram& program,
                SimLevel level, std::uint64_t cycles) {
  if (level == SimLevel::kInterpretive) {
    InterpSimulator sim(model);
    const double s = bench::time_per_call([&] {
      sim.load(program);
      sim.run();
    });
    return static_cast<double>(cycles) / s;
  }
  if (level == SimLevel::kDecodeCached) {
    CachedInterpSimulator sim(model);
    sim.load(program);  // pre-decodes once; the loop reloads state only
    const double s = bench::time_per_call([&] {
      sim.reload(program);
      sim.run();
    });
    return static_cast<double>(cycles) / s;
  }
  CompiledSimulator sim(model, level);
  SimulationCompiler compiler(model, sim.decoder());
  sim.load_precompiled(program, compiler.compile(program, level));
  const double s = bench::time_per_call([&] {
    sim.reload(program);
    sim.run();
  });
  return static_cast<double>(cycles) / s;
}

}  // namespace

int main() {
  bench::BenchTarget target;
  std::printf("E4 -- levels of compiled simulation (ablation, c62x)\n");
  std::printf("%-8s %12s %12s %12s %12s | %9s %9s %9s\n", "app", "interp",
              "cached", "dynamic", "static", "decode", "sequence", "instant");
  for (const auto& w : workloads::paper_suite()) {
    const LoadedProgram program = target.assemble(w);
    const std::uint64_t cycles =
        bench::measure_cycles(*target.model, program);
    const double interp =
        run_rate(*target.model, program, SimLevel::kInterpretive, cycles);
    const double cached =
        run_rate(*target.model, program, SimLevel::kDecodeCached, cycles);
    const double dynamic =
        run_rate(*target.model, program, SimLevel::kCompiledDynamic, cycles);
    const double stat =
        run_rate(*target.model, program, SimLevel::kCompiledStatic, cycles);
    std::printf("%-8s %12s %12s %12s %12s | %8.2fx %8.2fx %8.2fx\n",
                w.name.c_str(), bench::format_rate(interp).c_str(),
                bench::format_rate(cached).c_str(),
                bench::format_rate(dynamic).c_str(),
                bench::format_rate(stat).c_str(), cached / interp,
                dynamic / cached, stat / dynamic);
  }
  std::printf(
      "\ncolumns: cycles/s per level; speedup decomposition: compile-time\n"
      "decoding (interp->cached), compile-time sequencing (cached->dynamic),\n"
      "operation instantiation (dynamic->static).\n");
  return 0;
}
