// Supplementary experiment: retargetability in numbers. The same dot-
// product kernel runs on all three shipped machine models; every tool in
// the path (decoder, assembler, simulation compiler, simulators) is
// generated from the respective description. Reported per target: model
// complexity, simulated cycles, and simulation speed at each level —
// showing the compiled-simulation win is a property of the technique, not
// of one hand-tuned target.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/cached_interp.hpp"
#include "targets/c54x.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

namespace {

constexpr int kElements = 32;

std::string data_section(int n, int x_base, int y_base) {
  std::string s = "        .data dmem " + std::to_string(x_base) +
                  "\n        .word ";
  for (int i = 0; i < n; ++i) s += (i ? ", " : "") + std::to_string(i + 1);
  s += "\n        .data dmem " + std::to_string(y_base) + "\n        .word ";
  for (int i = 0; i < n; ++i)
    s += (i ? ", " : "") + std::to_string(3 * (i + 1));
  s += "\n";
  return s;
}

std::string tinydsp_kernel() {
  std::string s;
  s += "        MVK " + std::to_string(kElements) + ", R1\n";  // count
  s += "        MVK 0, R2\n";   // acc
  s += "        MVK 0, R3\n";   // i
  s += "        MVK 1, R7\n";   // const 1
  s += "loop:   BZ R1, done\n";
  s += "        LD R4, R3, 100\n";
  s += "        LD R5, R3, 300\n";
  s += "        MUL.L R6, R4, R5\n";
  s += "        ADD.L R2, R2, R6\n";
  s += "        ADD.L R3, R3, R7\n";
  s += "        SUB.L R1, R1, R7\n";
  s += "        B loop\n";
  s += "done:   MVK 600, R4\n";
  s += "        ST R2, R4, 0\n";
  s += "        HALT\n";
  return s + data_section(kElements, 100, 300);
}

std::string c62x_kernel() {
  std::string s;
  s += "        MVK 100, A4\n        MVK 300, A5\n";
  s += "        MVK " + std::to_string(kElements) + ", B0\n";
  s += "        MVK 0, A9\n";
  s += "loop:   LDW A4, 0, A6\n        LDW A5, 0, A7\n        NOP 3\n";
  s += "        MPY A6, A7, A8\n        ADD A9, A8, A9\n";
  s += "        ADDK 1, A4\n        ADDK 1, A5\n        ADDK -1, B0\n";
  s += "        [B0] B loop\n";
  for (int i = 0; i < 5; ++i) s += "        NOP 1\n";
  s += "        MVK 600, A3\n        STW A9, A3, 0\n        NOP 3\n"
       "        HALT\n";
  return s + data_section(kElements, 100, 300);
}

std::string c54x_kernel() {
  std::string s;
  s += "        LDAR AR1, " + std::to_string(kElements - 1) + "\n";
  s += "        LDAR AR2, 100\n        LDAR AR3, 200\n        LDI 0, A\n";
  s += "loop:   LD *AR2, B\n        ST B, @599\n        LDT @599\n";
  s += "        MAC *AR3, A\n        MAR AR2, 1\n        MAR AR3, 1\n";
  s += "        BANZ loop, AR1\n        ST A, @600\n        HALT\n";
  return s + data_section(kElements, 100, 200);
}

struct LevelRates {
  std::uint64_t cycles = 0;
  double interp = 0, cached = 0, dynamic = 0, stat = 0;
};

LevelRates measure(const Model& model, const LoadedProgram& program) {
  LevelRates rates;
  rates.cycles = bench::measure_cycles(model, program);
  {
    InterpSimulator sim(model);
    const double s = bench::time_per_call([&] {
      sim.load(program);
      sim.run();
    });
    rates.interp = static_cast<double>(rates.cycles) / s;
  }
  {
    CachedInterpSimulator sim(model);
    sim.load(program);
    const double s = bench::time_per_call([&] {
      sim.reload(program);
      sim.run();
    });
    rates.cached = static_cast<double>(rates.cycles) / s;
  }
  for (SimLevel level :
       {SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic}) {
    CompiledSimulator sim(model, level);
    SimulationCompiler compiler(model, sim.decoder());
    sim.load_precompiled(program, compiler.compile(program, level));
    const double s = bench::time_per_call([&] {
      sim.reload(program);
      sim.run();
    });
    (level == SimLevel::kCompiledDynamic ? rates.dynamic : rates.stat) =
        static_cast<double>(rates.cycles) / s;
  }
  return rates;
}

void report(const char* name, std::string_view model_source,
            const std::string& kernel) {
  auto model = compile_model_source_or_throw(model_source, name);
  Decoder decoder(*model);
  const LoadedProgram program =
      assemble_or_throw(*model, decoder, kernel, name);
  const LevelRates rates = measure(*model, program);
  std::printf("%-8s %4zu ops %2d stages %8llu %10s %10s %10s %10s %8.1fx\n",
              name, model->operations.size(), model->pipeline.depth(),
              static_cast<unsigned long long>(rates.cycles),
              bench::format_rate(rates.interp).c_str(),
              bench::format_rate(rates.cached).c_str(),
              bench::format_rate(rates.dynamic).c_str(),
              bench::format_rate(rates.stat).c_str(),
              rates.stat / rates.interp);
}

}  // namespace

int main() {
  std::printf("Supplementary -- one kernel, three generated tool chains "
              "(dot product, %d elements)\n",
              kElements);
  std::printf("%-8s %19s %8s %10s %10s %10s %10s %9s\n", "target", "model",
              "cycles", "interp", "cached", "dynamic", "static", "speedup");
  report("tinydsp", targets::tinydsp_model_source(), tinydsp_kernel());
  report("c54x", targets::c54x_model_source(), c54x_kernel());
  report("c62x", targets::c62x_model_source(), c62x_kernel());
  return 0;
}
