// E8 — simulation-as-a-service throughput: the SessionManager run-quantum
// scheduler (src/serve) driving many concurrent sessions of one program.
//
// The serve contract this bench demonstrates with numbers:
//   * 64 concurrent compiled-static sessions of one (model, program) cost
//     exactly ONE simulation-compiler run — the shared SimTableCache's
//     single-flight election coalesces the other 63 (table_compiles and
//     table_coalesced columns).
//   * Aggregate throughput (sessions/s, MIPS over retired slots) scales
//     with the worker-thread count.
//   * Scheduler step latency — the wall time of one run-quantum — is
//     reported as p50/p99 so fairness regressions (a quantum suddenly
//     running long) are visible, not just averaged away.
//   * With ServeConfig::max_resident binding, sessions round-trip through
//     checkpoint eviction/rehydration and finish bit-identically, at a
//     measurable (reported) throughput cost.
//   * kNative sessions share one dlopen'd module: the process-wide module
//     registry builds once and serves the rest (native_builds /
//     native_shares columns), mirroring the table-cache story one tier up.
//
// Every session's final RunResult is verified bit-identical to one
// standalone CompiledSimulator run of the same program before any number
// is reported; the bench exits nonzero on a mismatch, so a scheduling bug
// cannot hide behind a pretty table.
//
// `--json <path>` writes the tables as a machine-readable snapshot
// (BENCH_serve.json is the checked-in reference; tools/bench_compare.py
// gates the "serve" section).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "serve/session_manager.hpp"
#include "sim/native.hpp"

using namespace lisasim;

namespace {

struct ServeRow {
  std::string app;
  std::string level;
  unsigned threads = 0;
  unsigned sessions = 0;
  std::size_t max_resident = 0;  // 0 = unbounded (no eviction)
  double wall_seconds = 0;
  double sessions_per_sec = 0;
  double aggregate_mips = 0;  // retired slots / wall second / 1e6
  std::uint64_t p50_step_ns = 0;
  std::uint64_t p99_step_ns = 0;
  std::uint64_t quanta = 0;
  std::uint64_t table_compiles = 0;   // cache misses (expect 1)
  std::uint64_t table_coalesced = 0;  // sessions that waited on that one
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
};

struct NativeServeRow {
  std::string app;
  unsigned threads = 0;
  unsigned sessions = 0;
  double wall_seconds = 0;
  double aggregate_mips = 0;
  std::uint64_t native_builds = 0;  // toolchain/dlopen rounds (expect 1)
  std::uint64_t native_shares = 0;  // sessions served by the open module
};

/// The reference result one standalone run produces; every serve session
/// must match it exactly.
RunResult standalone_result(const Model& model, const LoadedProgram& program,
                            SimLevel level) {
  CompiledSimulator sim(model, level);
  sim.load(program);
  return sim.run();
}

bool results_equal(const RunResult& a, const RunResult& b) {
  return a.cycles == b.cycles && a.packets_retired == b.packets_retired &&
         a.slots_retired == b.slots_retired && a.fetches == b.fetches &&
         a.halted == b.halted;
}

/// Run `sessions` copies of `program` through a fresh SessionManager and
/// verify every report against `expect`. Exits the process on a contract
/// violation (wrong outcome or non-identical result).
ServeRow run_serve_config(const Model& model,
                          const std::shared_ptr<const LoadedProgram>& program,
                          const RunResult& expect, const std::string& app,
                          SimLevel level, const char* level_name,
                          unsigned threads, unsigned sessions,
                          std::size_t max_resident,
                          const std::string& evict_dir) {
  ServeConfig cfg;
  cfg.threads = threads;
  cfg.quantum_cycles = 4096;
  cfg.max_resident = max_resident;
  cfg.evict_dir = evict_dir;
  SessionManager manager(cfg);
  for (unsigned i = 0; i < sessions; ++i) {
    SessionSpec spec;
    spec.model = &model;
    spec.program = program;
    spec.level = level;
    manager.add_session(std::move(spec));
  }
  manager.run_all();

  for (const SessionReport& report : manager.reports()) {
    if (report.outcome != SessionOutcome::kHalted ||
        !results_equal(report.result, expect)) {
      std::fprintf(stderr,
                   "FAIL: %s diverged from standalone (outcome=%s "
                   "cycles=%llu vs %llu)\n",
                   report.name.c_str(), session_outcome_name(report.outcome),
                   static_cast<unsigned long long>(report.result.cycles),
                   static_cast<unsigned long long>(expect.cycles));
      std::exit(1);
    }
  }

  const ServeMetrics m = manager.metrics();
  const SimTableCache::Stats cache = manager.cache().stats();
  const double wall_s = static_cast<double>(m.wall_ns) / 1e9;
  ServeRow row;
  row.app = app;
  row.level = level_name;
  row.threads = threads;
  row.sessions = sessions;
  row.max_resident = max_resident;
  row.wall_seconds = wall_s;
  row.sessions_per_sec = wall_s > 0 ? m.finished / wall_s : 0;
  row.aggregate_mips = wall_s > 0 ? m.total_slots / wall_s / 1e6 : 0;
  row.p50_step_ns = m.p50_step_ns;
  row.p99_step_ns = m.p99_step_ns;
  row.quanta = m.quanta;
  row.table_compiles = cache.misses;
  row.table_coalesced = cache.coalesced;
  row.evictions = m.evictions;
  row.rehydrations = m.rehydrations;
  return row;
}

NativeServeRow run_native_config(
    const Model& model, const std::shared_ptr<const LoadedProgram>& program,
    const RunResult& expect, const std::string& app, unsigned threads,
    unsigned sessions) {
  const NativeRegistryStats before = NativeRuntime::registry_stats();
  ServeConfig cfg;
  cfg.threads = threads;
  cfg.quantum_cycles = 4096;
  cfg.native_blocking = true;  // deterministic installs for the bench
  SessionManager manager(cfg);
  for (unsigned i = 0; i < sessions; ++i) {
    SessionSpec spec;
    spec.model = &model;
    spec.program = program;
    spec.level = SimLevel::kNative;
    manager.add_session(std::move(spec));
  }
  manager.run_all();

  for (const SessionReport& report : manager.reports()) {
    if (report.outcome != SessionOutcome::kHalted ||
        !results_equal(report.result, expect)) {
      std::fprintf(stderr, "FAIL: native session %s diverged from standalone\n",
                   report.name.c_str());
      std::exit(1);
    }
  }

  const ServeMetrics m = manager.metrics();
  const NativeRegistryStats after = NativeRuntime::registry_stats();
  const double wall_s = static_cast<double>(m.wall_ns) / 1e9;
  NativeServeRow row;
  row.app = app;
  row.threads = threads;
  row.sessions = sessions;
  row.wall_seconds = wall_s;
  row.aggregate_mips = wall_s > 0 ? m.total_slots / wall_s / 1e6 : 0;
  row.native_builds = after.builds - before.builds;
  row.native_shares = after.shares - before.shares;
  return row;
}

void write_json(const char* path, const std::vector<ServeRow>& serve,
                const std::vector<NativeServeRow>& native) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"target\": \"c62x\",\n");
  std::fprintf(f, "  \"serve\": [\n");
  for (std::size_t i = 0; i < serve.size(); ++i) {
    const ServeRow& r = serve[i];
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"level\": \"%s\", \"threads\": %u, "
        "\"sessions\": %u, \"max_resident\": %zu, "
        "\"wall_seconds\": %.4f, \"sessions_per_sec\": %.1f, "
        "\"aggregate_mips\": %.3f, \"p50_step_ns\": %llu, "
        "\"p99_step_ns\": %llu, \"quanta\": %llu, "
        "\"table_compiles\": %llu, \"table_coalesced\": %llu, "
        "\"evictions\": %llu, \"rehydrations\": %llu}%s\n",
        r.app.c_str(), r.level.c_str(), r.threads, r.sessions, r.max_resident,
        r.wall_seconds, r.sessions_per_sec, r.aggregate_mips,
        static_cast<unsigned long long>(r.p50_step_ns),
        static_cast<unsigned long long>(r.p99_step_ns),
        static_cast<unsigned long long>(r.quanta),
        static_cast<unsigned long long>(r.table_compiles),
        static_cast<unsigned long long>(r.table_coalesced),
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.rehydrations),
        i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"serve_native\": [\n");
  for (std::size_t i = 0; i < native.size(); ++i) {
    const NativeServeRow& r = native[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"threads\": %u, \"sessions\": %u, "
                 "\"wall_seconds\": %.4f, \"aggregate_mips\": %.3f, "
                 "\"native_builds\": %llu, \"native_shares\": %llu}%s\n",
                 r.app.c_str(), r.threads, r.sessions, r.wall_seconds,
                 r.aggregate_mips,
                 static_cast<unsigned long long>(r.native_builds),
                 static_cast<unsigned long long>(r.native_shares),
                 i + 1 < native.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  bench::BenchTarget target;
  // One program, many sessions — the service's dominant pattern. repeat=32
  // stretches the FIR run to ~600k cycles so each session spans well over
  // a hundred 4096-cycle quanta and the percentiles have a population.
  const workloads::Workload fir = workloads::make_fir(16, 64, 32);
  const auto program =
      std::make_shared<const LoadedProgram>(target.assemble(fir));
  const RunResult expect =
      standalone_result(*target.model, *program, SimLevel::kCompiledStatic);
  std::printf("program %s: %llu cycles/session, 64 sessions per config\n",
              fir.name.c_str(), static_cast<unsigned long long>(expect.cycles));

  // Scale the worker sweep to the host, but always include a 2-worker
  // config: even on one core it exercises the contended scheduler paths
  // (claims, shared-cache election), and on bigger hosts the extra rows
  // show the throughput scaling.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1u, 2u};
  for (unsigned t : {4u, 8u})
    if (t <= hw) thread_counts.push_back(t);

  // -- Shared-table scaling: 64 sessions, one compile, more workers. --
  std::vector<ServeRow> serve_rows;
  std::printf("\n%-6s %-7s %8s %9s %12s %12s %10s %10s %9s\n", "app",
              "threads", "sessions", "compiles", "sess/s", "agg MIPS",
              "p50 step", "p99 step", "quanta");
  for (unsigned t : thread_counts) {
    ServeRow row = run_serve_config(*target.model, program, expect, "fir",
                                    SimLevel::kCompiledStatic, "static", t, 64,
                                    /*max_resident=*/0, "");
    std::printf("%-6s %-7u %8u %9llu %12.1f %12.3f %8.1fus %8.1fus %9llu\n",
                row.app.c_str(), row.threads, row.sessions,
                static_cast<unsigned long long>(row.table_compiles),
                row.sessions_per_sec, row.aggregate_mips,
                row.p50_step_ns / 1e3, row.p99_step_ns / 1e3,
                static_cast<unsigned long long>(row.quanta));
    serve_rows.push_back(std::move(row));
  }

  // -- Eviction churn: the same fleet squeezed through 12 resident slots,
  //    every session checkpoint-evicted and rehydrated along the way. --
  const std::filesystem::path evict_dir =
      std::filesystem::temp_directory_path() /
      ("lisasim-bench-serve-" + std::to_string(::getpid()));
  {
    const unsigned t = std::min(4u, hw);
    ServeRow row = run_serve_config(*target.model, program, expect, "fir",
                                    SimLevel::kCompiledStatic, "static", t, 64,
                                    /*max_resident=*/12, evict_dir.string());
    std::printf("%-6s %-7u %8u %9llu %12.1f %12.3f %8.1fus %8.1fus %9llu"
                "  (max_resident=12: %llu evictions, %llu rehydrations)\n",
                row.app.c_str(), row.threads, row.sessions,
                static_cast<unsigned long long>(row.table_compiles),
                row.sessions_per_sec, row.aggregate_mips,
                row.p50_step_ns / 1e3, row.p99_step_ns / 1e3,
                static_cast<unsigned long long>(row.quanta),
                static_cast<unsigned long long>(row.evictions),
                static_cast<unsigned long long>(row.rehydrations));
    serve_rows.push_back(std::move(row));
  }
  std::error_code ec;
  std::filesystem::remove_all(evict_dir, ec);

  for (const ServeRow& row : serve_rows) {
    if (row.table_compiles != 1) {
      std::fprintf(stderr,
                   "FAIL: %u sessions at threads=%u compiled the table %llu "
                   "times (want exactly 1)\n",
                   row.sessions, row.threads,
                   static_cast<unsigned long long>(row.table_compiles));
      return 1;
    }
  }
  std::printf("verify: every session bit-identical to standalone, one table "
              "compile per config\n");

  // -- Native tier: one dlopen'd module shared across the fleet. The
  //    native fleet runs the un-repeated FIR: every new hot trace launches
  //    an out-of-process compile round, so the bench keeps the region set
  //    small and lets the content-hash registry turn 8 sessions' rounds
  //    into a handful of builds plus shares. --
  std::vector<NativeServeRow> native_rows;
  if (NativeRuntime::toolchain_available()) {
    const workloads::Workload fir_small = workloads::make_fir(16, 64);
    const auto native_program =
        std::make_shared<const LoadedProgram>(target.assemble(fir_small));
    const RunResult native_expect = standalone_result(
        *target.model, *native_program, SimLevel::kCompiledStatic);
    const NativeServeRow row =
        run_native_config(*target.model, native_program, native_expect, "fir",
                          std::min(4u, hw), 8);
    std::printf("\nnative: %u sessions, %llu module build(s), %llu share(s), "
                "%.3f aggregate MIPS\n",
                row.sessions, static_cast<unsigned long long>(row.native_builds),
                static_cast<unsigned long long>(row.native_shares),
                row.aggregate_mips);
    if (row.native_builds < 1 || row.native_shares == 0) {
      std::fprintf(stderr,
                   "FAIL: native fleet did not share the module "
                   "(builds=%llu shares=%llu)\n",
                   static_cast<unsigned long long>(row.native_builds),
                   static_cast<unsigned long long>(row.native_shares));
      return 1;
    }
    native_rows.push_back(row);
  } else {
    std::printf("\nnative: no out-of-process toolchain; section skipped\n");
  }

  if (json_path != nullptr) write_json(json_path, serve_rows, native_rows);
  return 0;
}
