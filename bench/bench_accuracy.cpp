// E5 — paper §6/§7: "without any loss in accuracy".
//
// The compiled simulator must be cycle-true and state-true to the
// interpretive one. For every workload we print the cycle count, retired
// instruction count and a state digest per simulation level; any mismatch
// exits non-zero. The bench also checks the workloads' architectural
// results against their C reference models (the strongest accuracy
// anchor).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace lisasim;

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct LevelResult {
  RunResult run;
  std::uint64_t digest = 0;
};

LevelResult run_level(const Model& model, const LoadedProgram& program,
                      SimLevel level) {
  if (level == SimLevel::kInterpretive) {
    InterpSimulator sim(model);
    sim.load(program);
    LevelResult r{sim.run(), 0};
    r.digest = fnv1a(sim.state().dump_nonzero());
    return r;
  }
  CompiledSimulator sim(model, level);
  sim.load(program);
  LevelResult r{sim.run(), 0};
  r.digest = fnv1a(sim.state().dump_nonzero());
  return r;
}

}  // namespace

int main() {
  bench::BenchTarget target;
  bool ok = true;

  std::printf("E5 -- accuracy: cycle counts and state digests per level\n");
  std::printf("%-8s %-18s %12s %12s %18s\n", "app", "level", "cycles",
              "insns", "state digest");
  for (const auto& w : workloads::paper_suite()) {
    const LoadedProgram program = target.assemble(w);
    const LevelResult interp =
        run_level(*target.model, program, SimLevel::kInterpretive);
    const LevelResult dynamic =
        run_level(*target.model, program, SimLevel::kCompiledDynamic);
    const LevelResult stat =
        run_level(*target.model, program, SimLevel::kCompiledStatic);
    const LevelResult* rows[3] = {&interp, &dynamic, &stat};
    const char* names[3] = {"interpretive", "compiled-dynamic",
                            "compiled-static"};
    for (int i = 0; i < 3; ++i)
      std::printf("%-8s %-18s %12llu %12llu %18llx\n", w.name.c_str(),
                  names[i],
                  static_cast<unsigned long long>(rows[i]->run.cycles),
                  static_cast<unsigned long long>(rows[i]->run.slots_retired),
                  static_cast<unsigned long long>(rows[i]->digest));
    const bool match = interp.run == dynamic.run && interp.run == stat.run &&
                       interp.digest == dynamic.digest &&
                       interp.digest == stat.digest;
    ok = ok && match;

    // Reference-model check on the interpretive result.
    InterpSimulator sim(*target.model);
    sim.load(program);
    sim.run();
    const Resource* dmem = target.model->resource_by_name("dmem");
    std::size_t mismatches = 0;
    for (const auto& [addr, value] : w.expected_dmem)
      if (sim.state().read(dmem->id, addr) != value) ++mismatches;
    std::printf("%-8s reference model: %zu/%zu values %s\n\n", w.name.c_str(),
                w.expected_dmem.size() - mismatches, w.expected_dmem.size(),
                mismatches == 0 ? "MATCH" : "MISMATCH");
    ok = ok && mismatches == 0;
  }
  std::printf("accuracy: %s (paper claim: no loss in accuracy)\n",
              ok ? "EXACT across all levels" : "MISMATCH");
  return ok ? 0 : 1;
}
