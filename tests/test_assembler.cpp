// Assembler/disassembler tests: directives, labels, immediates, error
// reporting, whitespace rules, data segments and program loading.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "asm/disasm.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"
#include "model/state.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

struct AsmHarness {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;

  explicit AsmHarness(std::string_view source, const char* name) {
    model = compile_model_source_or_throw(source, name);
    decoder = std::make_unique<Decoder>(*model);
  }

  LoadedProgram ok(std::string_view src) {
    return assemble_or_throw(*model, *decoder, src, "t.asm");
  }

  std::string errors(std::string_view src) {
    DiagnosticEngine diags;
    Assembler assembler(*model, *decoder);
    assembler.assemble(src, "t.asm", diags);
    return diags.render();
  }
};

AsmHarness& tiny() {
  static AsmHarness h(targets::tinydsp_model_source(), "tinydsp");
  return h;
}

AsmHarness& c62x() {
  static AsmHarness h(targets::c62x_model_source(), "c62x");
  return h;
}

TEST(Assembler, ForwardAndBackwardLabels) {
  const LoadedProgram p = tiny().ok(R"(
start:  B fwd
        NOP 1
fwd:    B start
        HALT
  )");
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.symbols.at("start"), 0);
  EXPECT_EQ(p.symbols.at("fwd"), 2);
  // br target field of word 0 encodes 2, of word 2 encodes 0.
  EXPECT_EQ((p.words[0] >> 12) & 0xFFFF, 2u);
  EXPECT_EQ((p.words[2] >> 12) & 0xFFFF, 0u);
}

TEST(Assembler, EntryDirective) {
  const LoadedProgram p = tiny().ok(R"(
        NOP 1
main:   HALT
        .entry main
  )");
  EXPECT_EQ(p.entry, 1u);
}

TEST(Assembler, EntryDefaultsToZero) {
  const LoadedProgram p = tiny().ok("HALT\n");
  EXPECT_EQ(p.entry, 0u);
}

TEST(Assembler, TextBaseOffsetsAddresses) {
  const LoadedProgram p = tiny().ok(R"(
        .text 100
lbl:    HALT
        .entry lbl
  )");
  EXPECT_EQ(p.text_base, 100u);
  EXPECT_EQ(p.entry, 100u);
}

TEST(Assembler, DataSegmentsAndWordValues) {
  const LoadedProgram p = tiny().ok(R"(
        HALT
        .data dmem 10
        .word 1, -2, 0x30
        .data dmem 20
        .word 99
  )");
  ASSERT_EQ(p.data.size(), 2u);
  EXPECT_EQ(p.data[0].memory, "dmem");
  EXPECT_EQ(p.data[0].base, 10u);
  EXPECT_EQ(p.data[0].values, (std::vector<std::int64_t>{1, -2, 0x30}));
  EXPECT_EQ(p.data[1].base, 20u);
}

TEST(Assembler, WordWithSymbolValue) {
  const LoadedProgram p = tiny().ok(R"(
here:   HALT
        .data dmem 0
        .word here
  )");
  EXPECT_EQ(p.data[0].values[0], 0);
}

TEST(Assembler, LoadIntoStateWritesTextDataAndPc) {
  const LoadedProgram p = tiny().ok(R"(
        .text 5
e:      HALT
        .entry e
        .data dmem 7
        .word 42
  )");
  ProcessorState state(*tiny().model);
  load_into_state(p, state);
  EXPECT_EQ(state.pc(), 5u);
  EXPECT_EQ(
      static_cast<std::uint64_t>(state.read(tiny().model->fetch_memory, 5)),
      p.words[0]);
  EXPECT_EQ(state.read(tiny().model->resource_by_name("dmem")->id, 7), 42);
}

TEST(Assembler, NegativeImmediatesEncodeTwosComplement) {
  const LoadedProgram p = tiny().ok("MVK -1, R0\nHALT\n");
  EXPECT_EQ((p.words[0] >> 8) & 0xFFFF, 0xFFFFu);
}

TEST(Assembler, HexImmediates) {
  const LoadedProgram p = tiny().ok("MVK 0x7F, R1\nHALT\n");
  EXPECT_EQ((p.words[0] >> 8) & 0xFFFF, 0x7Fu);
}

struct BadCase {
  const char* source;
  const char* expect_in_error;
};

class AssemblerErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(AssemblerErrors, Reports) {
  const std::string errors = tiny().errors(GetParam().source);
  EXPECT_FALSE(errors.empty()) << GetParam().source;
  EXPECT_NE(errors.find(GetParam().expect_in_error), std::string::npos)
      << "got: " << errors;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        BadCase{"FROB R1\n", "cannot assemble"},
        BadCase{"MVK 99999, R1\n", "does not fit"},
        BadCase{"MVK -40000, R1\n", "does not fit"},
        BadCase{"B nowhere\n", "undefined symbol"},
        BadCase{"x: HALT\nx: HALT\n", "duplicate label"},
        BadCase{"|| HALT\n", "'||'"},
        BadCase{".bogus 1\n", "unknown directive"},
        BadCase{".data\n", ".data requires a memory name"},
        BadCase{".entry\n", ".entry requires"},
        BadCase{"HALT\n.text 5\n", "one .text section"},
        BadCase{".data dmem 0\nHALT\n", "instruction outside .text"},
        BadCase{"MVK5, R1\n", "cannot assemble"},
        BadCase{"ADD.L R1 R2, R3\n", "cannot assemble"}));

TEST(Assembler, ParallelBarOnSingleIssueModelFails) {
  const std::string errors = tiny().errors("NOP 1\n|| NOP 1\nHALT\n");
  EXPECT_NE(errors.find("single-issue"), std::string::npos) << errors;
}

TEST(Assembler, WhitespaceIsFlexible) {
  const LoadedProgram a = c62x().ok("ADD A1, A2, A3\nHALT\n");
  const LoadedProgram b = c62x().ok("  ADD   A1 ,A2,   A3\nHALT\n");
  EXPECT_EQ(a.words[0], b.words[0]);
}

TEST(Assembler, MnemonicRequiresSeparation) {
  EXPECT_FALSE(c62x().errors("ADDA1, A2, A3\nHALT\n").empty());
}

TEST(Assembler, PredicatePrefixPicksAlternative) {
  const LoadedProgram none = c62x().ok("ADD A1, A2, A3\n");
  const LoadedProgram b0 = c62x().ok("[B0] ADD A1, A2, A3\n");
  const LoadedProgram nb0 = c62x().ok("[!B0] ADD A1, A2, A3\n");
  EXPECT_EQ(none.words[0] >> 28, 0b0000u);
  EXPECT_EQ(b0.words[0] >> 28, 0b0010u);
  EXPECT_EQ(nb0.words[0] >> 28, 0b0011u);
}

TEST(Assembler, CommentsEverywhere) {
  const LoadedProgram p = tiny().ok(R"(
; full-line comment
        MVK 1, R1     ; trailing
        HALT          // c++ style
  )");
  EXPECT_EQ(p.words.size(), 2u);
}


TEST(Assembler, SpaceAdvancesTheCursor) {
  const LoadedProgram p = tiny().ok(R"(
        HALT
        .space 3
lbl:    HALT
        .entry lbl
  )");
  EXPECT_EQ(p.words.size(), 5u);
  EXPECT_EQ(p.symbols.at("lbl"), 4);
  EXPECT_EQ(p.words[1], 0u);
  EXPECT_EQ(p.words[2], 0u);
}

TEST(Assembler, AlignRoundsUp) {
  const LoadedProgram p = tiny().ok(R"(
        HALT
        .align 4
lbl:    HALT
  )");
  EXPECT_EQ(p.symbols.at("lbl"), 4);
  EXPECT_EQ(p.words.size(), 5u);

  // Already aligned: no padding.
  const LoadedProgram q = tiny().ok(R"(
        HALT
        HALT
        .align 2
lbl:    HALT
  )");
  EXPECT_EQ(q.symbols.at("lbl"), 2);
}

TEST(Assembler, SpaceInDataSegment) {
  const LoadedProgram p = tiny().ok(R"(
        HALT
        .data dmem 10
        .word 1
        .space 2
        .word 9
  )");
  ASSERT_EQ(p.data.size(), 1u);
  EXPECT_EQ(p.data[0].values,
            (std::vector<std::int64_t>{1, 0, 0, 9}));
}

TEST(Assembler, AlignInDataSegment) {
  const LoadedProgram p = tiny().ok(R"(
        HALT
        .data dmem 0
        .word 1
        .align 8
        .word 5
  )");
  ASSERT_EQ(p.data[0].values.size(), 9u);
  EXPECT_EQ(p.data[0].values[8], 5);
}

TEST(Assembler, SpaceRequiresPositiveCount) {
  EXPECT_FALSE(tiny().errors("HALT\n.space 0\n").empty());
  EXPECT_FALSE(tiny().errors("HALT\n.space\n").empty());
  EXPECT_FALSE(tiny().errors("HALT\n.align -2\n").empty());
}


TEST(Assembler, PacketResourceConflictsAreRejected) {
  // Two multiplies share the MPY pipeline registers (mpy_g1/mpy_v1): the
  // model's resources encode the structural hazard, the assembler
  // enforces it (paper \u00a75).
  const std::string two_mpy =
      c62x().errors("MPY A1, A2, A3\n|| MPY B1, B2, B3\nHALT\n");
  EXPECT_NE(two_mpy.find("oversubscribes"), std::string::npos) << two_mpy;

  const std::string mpy_smpy =
      c62x().errors("MPY A1, A2, A3\n|| SMPY B1, B2, B3\nHALT\n");
  EXPECT_NE(mpy_smpy.find("oversubscribes"), std::string::npos);

  const std::string two_ldw =
      c62x().errors("LDW A1, 0, A3\n|| LDW B1, 0, B3\nHALT\n");
  EXPECT_NE(two_ldw.find("oversubscribes"), std::string::npos);

  const std::string two_stw =
      c62x().errors("STW A1, A2, 0\n|| STW B1, B2, 0\nHALT\n");
  EXPECT_NE(two_stw.find("oversubscribes"), std::string::npos);

  const std::string two_branches =
      c62x().errors("B 0\n|| B 1\nHALT\n");
  EXPECT_NE(two_branches.find("oversubscribes"), std::string::npos);
}

TEST(Assembler, NonConflictingPacketsAssemble) {
  // One multiply, one load, one store and arithmetic coexist in a packet.
  const LoadedProgram p = c62x().ok(R"(
        MPY A1, A2, A3
     || LDW A4, 0, A5
     || STW A6, A7, 0
     || ADD B1, B2, B3
     || SUB B4, B5, B6
        NOP 5
        HALT
  )");
  EXPECT_EQ(p.words.size(), 7u);
  // Across packets the units are free again.
  const LoadedProgram q = c62x().ok(R"(
        MPY A1, A2, A3
        MPY B1, B2, B3
        HALT
  )");
  EXPECT_EQ(q.words.size(), 3u);
}

TEST(Disassembler, UndecodableWordPrintsDotWord) {
  const std::string text = disassemble_word(*tiny().decoder, 0x00000000u);
  EXPECT_NE(text.find(".word"), std::string::npos);
}

TEST(Disassembler, WholeProgramRoundTrip) {
  const char* source = R"(
        MVK 100, R1
        MVK 2, R2
        ADD.L R3, R1, R2
        SUB.S R4, R1, R2
        LD R5, R1, -3
        ST R5, R1, 4
        BZ R4, 0
        NOP 7
        HALT
  )";
  const LoadedProgram p = tiny().ok(source);
  std::string reassembled;
  for (std::uint64_t word : p.words)
    reassembled += disassemble_word(*tiny().decoder, word) + "\n";
  const LoadedProgram p2 = tiny().ok(reassembled);
  EXPECT_EQ(p.words, p2.words);
}

}  // namespace
}  // namespace lisasim
