// ProcessorState unit tests: canonicalizing stores, bounds checking,
// reset, views, equality and the dump format.
#include <gtest/gtest.h>

#include "model/sema.hpp"
#include "model/state.hpp"

namespace lisasim {
namespace {

std::unique_ptr<Model> small_model() {
  return compile_model_source_or_throw(R"(
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      REGISTER int16 r[4];
      MEMORY uint8 m[8];
      int64 wide;
      bool flag;
    }
  )",
                                       "state-test");
}

TEST(State, CanonicalizesOnWrite) {
  auto model = small_model();
  ProcessorState state(*model);
  const ResourceId r = model->resource_by_name("r")->id;
  state.write(r, 0, 70000);  // wraps into int16
  const ValueType int16_type{16, true};
  EXPECT_EQ(state.read(r, 0), int16_type.canonicalize(70000));
  state.write(r, 1, -1);
  EXPECT_EQ(state.read(r, 1), -1);

  const ResourceId m = model->resource_by_name("m")->id;
  state.write(m, 3, -1);  // uint8 wraps to 255
  EXPECT_EQ(state.read(m, 3), 255);

  const ResourceId flag = model->resource_by_name("flag")->id;
  state.write(flag, 0, 3);  // bool keeps only the low bit
  EXPECT_EQ(state.read(flag), 1);

  const ResourceId wide = model->resource_by_name("wide")->id;
  state.write(wide, 0, INT64_MIN);
  EXPECT_EQ(state.read(wide), INT64_MIN);
}

TEST(State, BoundsChecking) {
  auto model = small_model();
  ProcessorState state(*model);
  const ResourceId r = model->resource_by_name("r")->id;
  EXPECT_THROW(state.read(r, 4), SimError);
  EXPECT_THROW(state.write(r, 4, 0), SimError);
  EXPECT_NO_THROW(state.read(r, 3));
  // Scalars are size 1.
  const ResourceId wide = model->resource_by_name("wide")->id;
  EXPECT_THROW(state.read(wide, 1), SimError);
}

TEST(State, PcAccessors) {
  auto model = small_model();
  ProcessorState state(*model);
  state.set_pc(1234);
  EXPECT_EQ(state.pc(), 1234u);
  // PC is uint32: wraps.
  state.set_pc(0x1'0000'0005ull);
  EXPECT_EQ(state.pc(), 5u);
}

TEST(State, ResetZeroesEverything) {
  auto model = small_model();
  ProcessorState state(*model);
  state.write(model->resource_by_name("r")->id, 2, 9);
  state.set_pc(7);
  state.reset();
  EXPECT_EQ(state.read(model->resource_by_name("r")->id, 2), 0);
  EXPECT_EQ(state.pc(), 0u);
  EXPECT_EQ(state.dump_nonzero(), "");
}

TEST(State, EqualityComparesAllStorage) {
  auto model = small_model();
  ProcessorState a(*model);
  ProcessorState b(*model);
  EXPECT_TRUE(a == b);
  a.write(model->resource_by_name("m")->id, 0, 1);
  EXPECT_FALSE(a == b);
  b.write(model->resource_by_name("m")->id, 0, 1);
  EXPECT_TRUE(a == b);
}

TEST(State, ArrayViewReflectsWrites) {
  auto model = small_model();
  ProcessorState state(*model);
  const ResourceId m = model->resource_by_name("m")->id;
  state.write(m, 2, 7);
  const auto view = state.array_view(m);
  ASSERT_EQ(view.size(), 8u);
  EXPECT_EQ(view[2], 7);
  EXPECT_EQ(view[0], 0);
}

TEST(State, DumpFormat) {
  auto model = small_model();
  ProcessorState state(*model);
  state.write(model->resource_by_name("wide")->id, 0, -5);
  state.write(model->resource_by_name("r")->id, 1, 3);
  // Resources print in declaration order; arrays with indices.
  EXPECT_EQ(state.dump_nonzero(), "r[1] = 3\nwide = -5\n");
}

TEST(State, SizeOf) {
  auto model = small_model();
  ProcessorState state(*model);
  EXPECT_EQ(state.size_of(model->resource_by_name("m")->id), 8u);
  EXPECT_EQ(state.size_of(model->resource_by_name("wide")->id), 1u);
}

}  // namespace
}  // namespace lisasim
