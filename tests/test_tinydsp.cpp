// End-to-end tests on the tinydsp model: assembly, decoding, pipeline
// timing (flush penalty, load write-back, NOP stalls) and the cross-level
// accuracy property.
#include <gtest/gtest.h>

#include "asm/disasm.hpp"
#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::CrossLevelRun;
using testing::TestTarget;

class TinyDspTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    target_ = new TestTarget(targets::tinydsp_model_source(), "tinydsp");
  }
  static void TearDownTestSuite() {
    delete target_;
    target_ = nullptr;
  }
  static TestTarget* target_;
};

TestTarget* TinyDspTest::target_ = nullptr;

TEST_F(TinyDspTest, AssembleDisassembleRoundTrip) {
  const char* sources[] = {
      "ADD.L R1, R2, R3", "SUB.S R4, R5, R6", "MUL.L R7, R8, R9",
      "LD R1, R2, 16",    "ST R3, R4, 100",   "MVK 1234, R5",
      "B 42",             "BZ R1, 7",         "NOP 3",
      "HALT",
  };
  for (const char* src : sources) {
    const LoadedProgram p = target_->assemble(std::string(src) + "\n HALT\n");
    ASSERT_GE(p.words.size(), 1u) << src;
    const std::string dis =
        disassemble_word(*target_->decoder, p.words[0]);
    // Reassembling the disassembly must produce the same word.
    const LoadedProgram p2 = target_->assemble(dis + "\n HALT\n");
    EXPECT_EQ(p.words[0], p2.words[0]) << src << " -> " << dis;
  }
}

TEST_F(TinyDspTest, DisassemblerShowsCanonicalForm) {
  const LoadedProgram p = target_->assemble("ADD.L R1, R2, R3\n");
  EXPECT_EQ(disassemble_word(*target_->decoder, p.words[0]),
            "ADD.L R1, R2, R3");
}

TEST_F(TinyDspTest, UnknownMnemonicFails) {
  DiagnosticEngine diags;
  Assembler assembler(*target_->model, *target_->decoder);
  assembler.assemble("FROB R1, R2\n", "t.asm", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST_F(TinyDspTest, OutOfRangeOperandFails) {
  DiagnosticEngine diags;
  Assembler assembler(*target_->model, *target_->decoder);
  assembler.assemble("MVK 100000, R1\n", "t.asm", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST_F(TinyDspTest, ArithmeticShortAndLongModes) {
  // Example 1 of the paper: the mode field selects 16-bit vs 32-bit
  // arithmetic for the same ADD mnemonic.
  const LoadedProgram p = target_->assemble(R"(
        MVK 30000, R1
        MVK 30000, R2
        ADD.S R3, R1, R2     ; 16-bit: 60000 wraps to -5536
        ADD.L R4, R1, R2     ; 32-bit: 60000
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_TRUE(run.result.halted);

  InterpSimulator sim(*target_->model);
  sim.load(p);
  sim.run(1000);
  EXPECT_EQ(testing::reg_of(*target_->model, sim.state(), "R", 3),
            sign_extend(60000, 16) + 0);  // -5536... computed as 64-bit sum
  EXPECT_EQ(testing::reg_of(*target_->model, sim.state(), "R", 4), 60000);
}

TEST_F(TinyDspTest, LoadWriteBackInWb) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 5, R1
        LD R2, R1, 3        ; R2 <- dmem[5 + 3]
        HALT
        .data dmem 8
        .word 777
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_TRUE(run.result.halted);
  EXPECT_NE(run.state_dump.find("R[2] = 777"), std::string::npos)
      << run.state_dump;
}

TEST_F(TinyDspTest, StoreThenLoad) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 42, R1
        MVK 100, R2
        ST R1, R2, 0
        NOP 2
        LD R3, R2, 0
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("R[3] = 42"), std::string::npos);
}

TEST_F(TinyDspTest, BranchFlushSkipsWrongPath) {
  const LoadedProgram p = target_->assemble(R"(
        B skip
        MVK 1, R1            ; must be squashed
        MVK 2, R2            ; must be squashed
skip:   MVK 3, R3
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_EQ(run.state_dump.find("R[1]"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("R[2]"), std::string::npos);
  EXPECT_NE(run.state_dump.find("R[3] = 3"), std::string::npos);
}

TEST_F(TinyDspTest, BranchPenaltyIsTwoCycles) {
  // Taken branch: flush of IF/ID creates a 2-cycle bubble. Compare a
  // straight-line HALT with a branch-to-HALT.
  const LoadedProgram straight = target_->assemble(R"(
        NOP 1
        HALT
  )");
  const LoadedProgram branched = target_->assemble(R"(
        B done
        NOP 1
done:   HALT
  )");
  const auto r1 = testing::run_all_levels(*target_->model, straight);
  const auto r2 = testing::run_all_levels(*target_->model, branched);
  // straight: NOP then HALT. branched: B (EX at some cycle), bubble,
  // bubble, HALT. The branch costs its own EX slot plus 2 flush bubbles.
  EXPECT_EQ(r2.result.cycles - r1.result.cycles, 2u);
}

TEST_F(TinyDspTest, ConditionalBranchTakenAndNotTaken) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 0, R1
        MVK 7, R2
        BZ R1, taken         ; R1 == 0 -> taken
        MVK 99, R3           ; squashed
taken:  BZ R2, nottaken      ; R2 != 0 -> fall through
        MVK 5, R4
nottaken: HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_EQ(run.state_dump.find("R[3]"), std::string::npos);
  EXPECT_NE(run.state_dump.find("R[4] = 5"), std::string::npos);
}

TEST_F(TinyDspTest, NopStallsThePipeline) {
  const LoadedProgram short_nop = target_->assemble("NOP 1\nHALT\n");
  const LoadedProgram long_nop = target_->assemble("NOP 9\nHALT\n");
  const auto r1 = testing::run_all_levels(*target_->model, short_nop);
  const auto r2 = testing::run_all_levels(*target_->model, long_nop);
  EXPECT_EQ(r2.result.cycles - r1.result.cycles, 8u);
}

TEST_F(TinyDspTest, LoopSumsNumbers) {
  // Sum 1..10 with a BZ loop; exercises repeated fetch of the same
  // addresses (the compiled simulator's table is hit many times).
  const LoadedProgram p = target_->assemble(R"(
        MVK 10, R1          ; counter
        MVK 0, R2           ; sum
        MVK 1, R3           ; constant 1
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_TRUE(run.result.halted);
  EXPECT_NE(run.state_dump.find("R[2] = 55"), std::string::npos)
      << run.state_dump;
}

TEST_F(TinyDspTest, RunsOffProgramThrows) {
  const LoadedProgram p = target_->assemble("NOP 1\n");  // no HALT
  InterpSimulator sim(*target_->model);
  sim.load(p);
  EXPECT_THROW(sim.run(1000), SimError);

  CompiledSimulator comp(*target_->model, SimLevel::kCompiledDynamic);
  comp.load(p);
  EXPECT_THROW(comp.run(1000), SimError);
}

TEST_F(TinyDspTest, MaxCyclesStopsWithoutHalt) {
  const LoadedProgram p = target_->assemble(R"(
loop:   B loop
        HALT
  )");
  InterpSimulator sim(*target_->model);
  sim.load(p);
  const RunResult r = sim.run(100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.cycles, 100u);
}

}  // namespace
}  // namespace lisasim
