// Tests for the retargetable fuzz subsystem (src/fuzz): the SYNTAX/CODING
// driven program generator, the five-level differential fuzzer with its
// repro bundles and greedy minimizer, and checkpoint serialization —
// including restore of a serialized EngineCheckpoint into a freshly
// constructed simulator, as a repro bundle replayed in a new process
// would do.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/differ.hpp"
#include "fuzz/progen.hpp"
#include "sim/checkpoint_io.hpp"
#include "sim_test_util.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}
TestTarget& c54x() {
  static TestTarget t(targets::c54x_model_source(), "c54x");
  return t;
}
TestTarget& c62x() {
  static TestTarget t(targets::c62x_model_source(), "c62x");
  return t;
}

// ---- generator -------------------------------------------------------------

TEST(FuzzGen, DeterministicInSeedAndOptions) {
  for (TestTarget* t : {&tiny(), &c54x(), &c62x()}) {
    fuzz::ProgramGenerator gen(*t->model);
    fuzz::GenOptions opts;
    for (std::uint64_t seed : {0ull, 7ull, 123456789ull}) {
      const fuzz::GeneratedProgram a = gen.generate(seed, opts);
      const fuzz::GeneratedProgram b = gen.generate(seed, opts);
      EXPECT_EQ(a.source, b.source) << t->model->name << " seed " << seed;
      EXPECT_EQ(a.has_smc, b.has_smc);
    }
    // Different seeds explore different programs.
    EXPECT_NE(gen.generate(1, opts).source, gen.generate(2, opts).source);
  }
}

TEST(FuzzGen, CapabilityProbesMatchTheMachineDescriptions) {
  fuzz::ProgramGenerator t(*tiny().model);
  EXPECT_TRUE(t.supports_smc());  // LDP/STP reach program memory
  EXPECT_TRUE(t.supports_branches());
  EXPECT_FALSE(t.supports_predication());
  EXPECT_FALSE(t.supports_packets());
  EXPECT_GE(t.instruction_templates(), 8u);

  fuzz::ProgramGenerator c54(*c54x().model);
  EXPECT_FALSE(c54.supports_smc());  // no store into pmem in the model
  EXPECT_TRUE(c54.supports_branches());

  fuzz::ProgramGenerator c62(*c62x().model);
  EXPECT_TRUE(c62.supports_smc());
  EXPECT_TRUE(c62.supports_predication());
  EXPECT_TRUE(c62.supports_packets());
  EXPECT_GE(c62.instruction_templates(), 20u);
}

TEST(FuzzGen, SeedSweepAssemblesWithFeatureCoverage) {
  for (TestTarget* t : {&tiny(), &c54x(), &c62x()}) {
    fuzz::ProgramGenerator gen(*t->model);
    fuzz::Coverage total;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
      const fuzz::GeneratedProgram prog = gen.generate(seed);
      SCOPED_TRACE(t->model->name + " seed " + std::to_string(seed));
      EXPECT_NO_THROW(t->assemble(prog.source)) << prog.source;
      total += prog.coverage;
    }
    EXPECT_EQ(total.programs, 64u);
    EXPECT_GT(total.branches, 0u);
    EXPECT_GT(total.backward_branches, 0u);
    EXPECT_GT(total.loads, 0u);
    EXPECT_GT(total.stores, 0u);
    EXPECT_GT(total.delay_slot_fills, 0u);
    if (gen.supports_smc()) {
      EXPECT_GE(total.smc_patches, total.programs / 10)
          << t->model->name << ": at least one SMC patch per 10 programs";
    }
    if (gen.supports_predication()) {
      EXPECT_GT(total.predicated, 0u);
    }
    if (gen.supports_packets()) {
      EXPECT_GT(total.parallel_packets, 0u);
    }
    const std::string stats = total.to_string();
    EXPECT_NE(stats.find("smc_patches"), std::string::npos);
  }
}

// ---- coverage-guided scheduling --------------------------------------------

TEST(FuzzSchedule, EmptyCoverageLeavesWeightsUntouched) {
  const fuzz::FeatureWeights base;
  const fuzz::FeatureWeights out = fuzz::schedule_weights(base, {});
  EXPECT_EQ(out.branch, base.branch);
  EXPECT_EQ(out.backward, base.backward);
  EXPECT_EQ(out.predicate, base.predicate);
  EXPECT_EQ(out.parallel, base.parallel);
  EXPECT_EQ(out.memory, base.memory);
  EXPECT_EQ(out.smc, base.smc);
  EXPECT_EQ(out.chaos, base.chaos);
}

TEST(FuzzSchedule, UnderHitFeaturesGainTheirDeficit) {
  fuzz::FeatureWeights base;
  fuzz::Coverage seen;
  seen.programs = 10;
  seen.packets = 100;
  seen.instructions = 200;
  // No branches at all: branch (18%) observed at 0% -> doubled to 36.
  seen.branches = 0;
  // Memory at exactly its target rate (35% of instructions): unchanged.
  seen.loads = 40;
  seen.stores = 30;
  // SMC over target (60% of programs): unchanged.
  seen.smc_patches = 8;
  const fuzz::FeatureWeights out = fuzz::schedule_weights(base, seen);
  EXPECT_EQ(out.branch, base.branch * 2);
  EXPECT_EQ(out.memory, base.memory);
  EXPECT_EQ(out.smc, base.smc);
  EXPECT_EQ(out.chaos, base.chaos);  // chaos is never steered
}

TEST(FuzzSchedule, BoostIsClampedBelowCertainty) {
  fuzz::FeatureWeights base;
  base.smc = 90;  // deficit of 90 would push past 100
  fuzz::Coverage seen;
  seen.programs = 50;
  seen.smc_patches = 0;
  const fuzz::FeatureWeights out = fuzz::schedule_weights(base, seen);
  EXPECT_EQ(out.smc, 95u);
}

TEST(FuzzSchedule, DeterministicInInputs) {
  fuzz::Coverage seen;
  seen.programs = 7;
  seen.packets = 91;
  seen.instructions = 140;
  seen.branches = 3;
  seen.backward_branches = 1;
  const fuzz::FeatureWeights a = fuzz::schedule_weights({}, seen);
  const fuzz::FeatureWeights b = fuzz::schedule_weights({}, seen);
  EXPECT_EQ(a.branch, b.branch);
  EXPECT_EQ(a.backward, b.backward);
  EXPECT_EQ(a.predicate, b.predicate);
  EXPECT_EQ(a.parallel, b.parallel);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.smc, b.smc);
}

TEST(FuzzSchedule, ScheduledCampaignStaysDivergenceFree) {
  TestTarget& t = tiny();
  fuzz::DifferentialFuzzer fuzzer(*t.model);
  fuzz::FuzzOptions opts;
  opts.repro_dir.clear();
  opts.coverage_schedule = true;
  fuzz::FuzzStats stats;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto d = fuzzer.run_seed(seed, opts, stats);
    EXPECT_FALSE(d.has_value())
        << "seed " << seed << ": " << d->level << "/" << d->policy << ": "
        << d->description;
  }
  EXPECT_GT(stats.programs, 0u);
}

// ---- differential fuzzer ---------------------------------------------------

TEST(FuzzDiff, SeedSweepFindsNoDivergence) {
  for (TestTarget* t : {&tiny(), &c54x(), &c62x()}) {
    fuzz::DifferentialFuzzer fuzzer(*t->model);
    fuzz::FuzzOptions opts;
    opts.repro_dir.clear();  // no bundles from a clean sweep
    fuzz::FuzzStats stats;
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
      const auto d = fuzzer.run_seed(seed, opts, stats);
      EXPECT_FALSE(d.has_value())
          << t->model->name << " seed " << seed << ": " << d->level << "/"
          << d->policy << ": " << d->description << "\n"
          << d->minimized;
    }
    EXPECT_EQ(stats.divergences, 0u);
    EXPECT_GT(stats.programs, 0u);
  }
}

TEST(FuzzDiff, InjectedDivergenceIsCaughtMinimizedAndBundled) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "lisasim_fuzz_repros";
  fs::remove_all(dir);

  fuzz::DifferentialFuzzer fuzzer(*tiny().model);
  fuzz::FuzzOptions opts;
  opts.repro_dir = dir.string();
  opts.inject = true;
  opts.inject_seed = 5;

  fuzz::FuzzStats stats;
  EXPECT_FALSE(fuzzer.run_seed(4, opts, stats).has_value())
      << "injection must only fire on its own seed";
  const auto d = fuzzer.run_seed(5, opts, stats);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seed, 5u);
  EXPECT_EQ(d->level, "trace");  // injection corrupts the trace level
  EXPECT_LE(d->minimized_packets, 8);
  EXPECT_LT(d->minimized.size(), d->source.size());

  // The bundle is self-contained: source, minimized source, serialized
  // oracle checkpoint at the last agreeing cycle, and metadata.
  ASSERT_FALSE(d->bundle_dir.empty());
  const fs::path bundle(d->bundle_dir);
  for (const char* name :
       {"program.asm", "minimized.asm", "checkpoint.txt", "meta.txt"})
    EXPECT_TRUE(fs::exists(bundle / name)) << name;

  std::ifstream ckpt(bundle / "checkpoint.txt");
  std::ostringstream buffer;
  buffer << ckpt.rdbuf();
  const EngineCheckpoint cp = parse_checkpoint(buffer.str());
  EXPECT_FALSE(cp.state.empty());
  EXPECT_EQ(serialize_checkpoint(cp), buffer.str());

  std::ifstream meta_in(bundle / "meta.txt");
  std::ostringstream meta;
  meta << meta_in.rdbuf();
  EXPECT_NE(meta.str().find("seed 5"), std::string::npos);
  EXPECT_NE(meta.str().find("level trace"), std::string::npos);
}

// ---- checkpoint serialization ----------------------------------------------

TEST(CheckpointIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_checkpoint(""), SimError);
  EXPECT_THROW(parse_checkpoint("lisasim-checkpoint 2\n"), SimError);
  EXPECT_THROW(parse_checkpoint("lisasim-checkpoint 1\ntotal_cycles x\n"),
               SimError);
  // Truncation after a declared count is detected.
  EXPECT_THROW(
      parse_checkpoint("lisasim-checkpoint 1\ntotal_cycles 0\n"
                       "interrupts 0\nstate 4\n1 2\n"),
      SimError);
}

TEST(CheckpointIo, EscapesDeferredErrorText) {
  EngineCheckpoint cp;
  cp.total_cycles = 3;
  cp.state = {1, -2, 0};
  EngineCheckpoint::SlotImage slot;
  slot.pc = 7;
  slot.valid = true;
  slot.work.treewalk = true;
  slot.work.error = "line one\nline two\\with backslash";
  slot.work.sched_paths = {{{0, 1, 2}, {3}}, {}};
  cp.slots.push_back(slot);
  cp.interrupts.emplace_back(10, 42);

  const std::string text = serialize_checkpoint(cp);
  const EngineCheckpoint back = parse_checkpoint(text);
  EXPECT_EQ(back.total_cycles, cp.total_cycles);
  EXPECT_EQ(back.state, cp.state);
  EXPECT_EQ(back.interrupts, cp.interrupts);
  ASSERT_EQ(back.slots.size(), 1u);
  EXPECT_EQ(back.slots[0].pc, 7u);
  EXPECT_EQ(back.slots[0].work.error, slot.work.error);
  EXPECT_EQ(back.slots[0].work.sched_paths, slot.work.sched_paths);
  EXPECT_EQ(serialize_checkpoint(back), text);
}

/// Serialized restore into a *freshly constructed* simulator: what a repro
/// bundle replay does in a new process. The c62x case checkpoints with
/// multi-stage packets in flight, so the tree-walk activation queues
/// travel through the text format as structural decode-tree paths.
TEST(CheckpointIo, FreshInterpRestoreResumesMidFlight) {
  const std::string source = R"(        MVK 40, B0
        MVK 0, A3
loop:   ADDK -1, B0
        ADD A3, B0, A3
        LDW A7, 2, A5
        ADD A5, A3, A3
   [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
        .data dmem 0
        .word 3, 1, 4, 1, 5, 9, 2, 6
)";
  const LoadedProgram p = c62x().assemble(source);

  InterpSimulator reference(*c62x().model);
  reference.load(p);
  const RunResult full = reference.run(100000);
  ASSERT_TRUE(full.halted);
  const std::string want = reference.state().dump_nonzero();

  for (std::uint64_t mid : {5ull, 23ull, 77ull}) {
    InterpSimulator first(*c62x().model);
    first.load(p);
    first.run(mid);
    const std::string text = serialize_checkpoint(first.save_checkpoint());

    InterpSimulator fresh(*c62x().model);
    fresh.load(p);
    fresh.restore_checkpoint(parse_checkpoint(text));
    const RunResult rest = fresh.run(100000);
    EXPECT_TRUE(rest.halted) << "mid " << mid;
    EXPECT_EQ(mid + rest.cycles, full.cycles) << "mid " << mid;
    EXPECT_EQ(fresh.state().dump_nonzero(), want) << "mid " << mid;
  }
}

/// Guarded restore: a self-patching tinydsp program checkpointed after
/// the patch, restored into a fresh compiled simulator under the
/// fallback policy. restore_checkpoint's bump_all() must invalidate the
/// pre-restore translations so the patched word executes through the
/// tree walk, matching the interpretive oracle bit for bit.
TEST(CheckpointIo, FreshGuardedRestoreAfterSelfModification) {
  const std::string source = R"(        .entry start
start:  MVK 0, R0
        MVK 3, R2
        MVK 100, R6
        MVK 1, R5
        MVK 1, R9
        MVK 5, R4
loop:   BZ R4, phase
patch:  ADD.L R6, R6, R2
        SUB.L R4, R4, R5
        B loop
phase:  BZ R9, done
        MVK 0, R9
        LDP R7, R0, tmpl
        STP R7, R0, patch
        MVK 7, R4
        B loop
done:   ST R6, R0, 32
        HALT
tmpl:   SUB.L R6, R6, R2
)";
  const LoadedProgram p = tiny().assemble(source);

  InterpSimulator oracle(*tiny().model);
  oracle.load(p);
  const RunResult full = oracle.run(100000);
  ASSERT_TRUE(full.halted);
  const std::string want = oracle.state().dump_nonzero();
  ASSERT_NE(want.find("dmem[32] = 94"), std::string::npos) << want;

  for (const GuardPolicy policy :
       {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    CompiledSimulator first(*tiny().model, SimLevel::kCompiledStatic);
    first.set_guard_policy(policy);
    first.load(p);
    const std::uint64_t mid = 60;  // past the STP patch
    first.run(mid);
    const std::string text = serialize_checkpoint(first.save_checkpoint());

    CompiledSimulator fresh(*tiny().model, SimLevel::kCompiledStatic);
    fresh.set_guard_policy(policy);
    fresh.load(p);
    fresh.restore_checkpoint(parse_checkpoint(text));
    const RunResult rest = fresh.run(100000);
    EXPECT_TRUE(rest.halted);
    EXPECT_EQ(mid + rest.cycles, full.cycles);
    EXPECT_EQ(fresh.state().dump_nonzero(), want);
  }
}

}  // namespace
}  // namespace lisasim
