// Model-validator (lint) tests: each check fires on a crafted bad model
// and stays quiet on the shipped ones.
#include <gtest/gtest.h>

#include "model/sema.hpp"
#include "model/validate.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

std::string findings(const std::string& source) {
  auto model = compile_model_source_or_throw(source, "lint-test");
  DiagnosticEngine diags;
  validate_model(*model, diags);
  return diags.render();
}

constexpr const char* kHeader = R"(
  RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int32 R[4];
    MEMORY int32 m[16];
    PIPELINE pipe = { EX; WB; };
  }
  FETCH { WORD 8; MEMORY m; }
)";

TEST(Validate, CleanOnShippedModels) {
  for (auto source : {targets::tinydsp_model_source(),
                      targets::c62x_model_source(),
                      targets::c54x_model_source()}) {
    auto model = compile_model_source_or_throw(source, "shipped");
    DiagnosticEngine diags;
    validate_model(*model, diags);
    // The shipped models must have zero *warnings* (notes are advisory).
    for (const auto& d : diags.diagnostics())
      EXPECT_NE(d.severity, Severity::kWarning) << d.to_string();
  }
}

TEST(Validate, DetectsAmbiguousGroup) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION a { DECLARE { LABEL f; } CODING { 0b0 f=0bx[7] } }
    OPERATION b { DECLARE { LABEL g; } CODING { 0b0 g=0bx[7] } }
    OPERATION instruction {
      DECLARE { GROUP pick = { a || b }; }
      CODING { pick }
      BEHAVIOR { R[0] = 1; }
    }
  )");
  EXPECT_NE(out.find("compatible codings"), std::string::npos) << out;
}

TEST(Validate, AcceptsDisjointGroup) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION a { DECLARE { LABEL f; } CODING { 0b0 f=0bx[7] } }
    OPERATION b { DECLARE { LABEL g; } CODING { 0b1 g=0bx[7] } }
    OPERATION instruction {
      DECLARE { GROUP pick = { a || b }; }
      CODING { pick }
      BEHAVIOR { R[0] = 1; }
    }
  )");
  EXPECT_EQ(out.find("compatible codings"), std::string::npos) << out;
}

TEST(Validate, DetectsUnreachableOperation) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION orphan { BEHAVIOR { R[0] = 1; } }
    OPERATION instruction {
      DECLARE { LABEL f; }
      CODING { f=0bx[8] }
      BEHAVIOR { R[1] = f; }
    }
  )");
  EXPECT_NE(out.find("'orphan' is unreachable"), std::string::npos) << out;
}

TEST(Validate, DetectsInstanceCycle) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION ping IN pipe.EX {
      BEHAVIOR { R[0] = 1; }
      ACTIVATION { pong }
    }
    OPERATION pong IN pipe.WB {
      BEHAVIOR { R[1] = 1; }
      ACTIVATION { ping }
    }
    OPERATION instruction {
      DECLARE { LABEL f; INSTANCE start = ping; }
      CODING { f=0bx[8] }
      ACTIVATION { start }
    }
  )");
  EXPECT_NE(out.find("instance cycle"), std::string::npos) << out;
}

TEST(Validate, DetectsBackwardActivation) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION early IN pipe.EX { BEHAVIOR { R[0] = 1; } }
    OPERATION late IN pipe.WB {
      BEHAVIOR { R[1] = 1; }
      ACTIVATION { early }
    }
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL f; INSTANCE w = late; }
      CODING { f=0bx[8] }
      ACTIVATION { w }
    }
  )");
  EXPECT_NE(out.find("earlier stage"), std::string::npos) << out;
}

TEST(Validate, DetectsUnboundLabel) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION instruction {
      DECLARE { LABEL f, ghost; }
      CODING { f=0bx[8] }
      BEHAVIOR { R[0] = ghost; }
    }
  )");
  EXPECT_NE(out.find("'ghost'"), std::string::npos) << out;
  EXPECT_NE(out.find("never bound"), std::string::npos);
}

TEST(Validate, DetectsGroupMissingFromSyntax) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION a { CODING { 0b0 } SYNTAX { "A" } }
    OPERATION b { CODING { 0b1 } SYNTAX { "B" } }
    OPERATION instruction {
      DECLARE { GROUP pick = { a || b }; LABEL f; }
      CODING { pick f=0bx[7] }
      SYNTAX { "OP " f }
      BEHAVIOR { R[0] = f; }
    }
  )");
  EXPECT_NE(out.find("not in SYNTAX"), std::string::npos) << out;
}

TEST(Validate, NotesUnusedResource) {
  const std::string out = findings(std::string(kHeader) + R"(
    OPERATION instruction {
      DECLARE { LABEL f; }
      CODING { f=0bx[8] }
      BEHAVIOR { m[0] = f; }
    }
  )");
  EXPECT_NE(out.find("'R' is never referenced"), std::string::npos) << out;
}

}  // namespace
}  // namespace lisasim
