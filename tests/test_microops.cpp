// Micro-op lowering tests: structural checks plus the central equivalence
// property — executing a specialized program through the tree-walking
// evaluator and through the micro-op machine must produce identical state.
#include <gtest/gtest.h>

#include "behavior/eval.hpp"
#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"

namespace lisasim {
namespace {

constexpr const char* kModel = R"(
  RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int32 R[8];
    MEMORY int32 m[32];
    int64 s;
    PIPELINE pipe = { EX; };
  }
  FETCH { WORD 16; MEMORY m; }
  OPERATION instruction IN pipe.EX {
    DECLARE { LABEL a, b; }
    CODING { a=0bx[8] b=0bx[8] }
    BEHAVIOR {
      BODY
    }
  }
)";

struct MicroHarness {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;
  std::unique_ptr<Specializer> specializer;

  explicit MicroHarness(const std::string& body) {
    std::string source = kModel;
    source.replace(source.find("BODY"), 4, body);
    model = compile_model_source_or_throw(source, "micro-test");
    decoder = std::make_unique<Decoder>(*model);
    specializer = std::make_unique<Specializer>(*model);
  }

  SpecProgram program(std::uint8_t a, std::uint8_t b) {
    std::vector<std::int64_t> words = {
        static_cast<std::int64_t>((static_cast<unsigned>(a) << 8) | b)};
    DecodedPacket packet = decoder->decode_packet(words, 0);
    PacketSchedule schedule = specializer->schedule_packet(packet);
    return std::move(schedule.stage_programs[0]);
  }

  /// Run via tree-walk and via micro-ops; expect identical final states
  /// and identical control flags; return the tree-walk state dump.
  std::string run_both_ways(std::uint8_t a, std::uint8_t b) {
    const SpecProgram prog = program(a, b);

    ProcessorState tree_state(*model);
    PipelineControl tree_control;
    Evaluator eval(tree_state, tree_control);
    eval.exec_flat(prog.stmts, prog.num_locals);

    ProcessorState micro_state(*model);
    PipelineControl micro_control;
    MicroProgram mp = lower_to_microops(prog);
    std::vector<std::int64_t> temps;
    run_microops(mp, micro_state, micro_control, temps);

    EXPECT_TRUE(tree_state == micro_state)
        << "tree:\n" << tree_state.dump_nonzero() << "micro:\n"
        << micro_state.dump_nonzero() << microops_to_string(mp);
    EXPECT_EQ(tree_control.flush, micro_control.flush);
    EXPECT_EQ(tree_control.halt, micro_control.halt);
    EXPECT_EQ(tree_control.stall_cycles, micro_control.stall_cycles);

    // Third way: the peephole-optimized program (what the simulators
    // actually execute) must match too.
    ProcessorState opt_state(*model);
    PipelineControl opt_control;
    MicroProgram opt = mp;
    optimize_microops(opt);
    EXPECT_LE(opt.ops.size(), mp.ops.size());
    EXPECT_LE(opt.num_temps, mp.num_temps);
    std::vector<std::int64_t> opt_temps;
    run_microops(opt, opt_state, opt_control, opt_temps);
    EXPECT_TRUE(tree_state == opt_state)
        << "tree:\n" << tree_state.dump_nonzero() << "optimized micro:\n"
        << opt_state.dump_nonzero() << microops_to_string(opt);
    EXPECT_EQ(tree_control.flush, opt_control.flush);
    EXPECT_EQ(tree_control.halt, opt_control.halt);
    EXPECT_EQ(tree_control.stall_cycles, opt_control.stall_cycles);
    return tree_state.dump_nonzero();
  }
};

TEST(MicroOps, StraightLineArithmetic) {
  MicroHarness h("s = a * 3 - b; R[1] = s + 1;");
  EXPECT_EQ(h.run_both_ways(10, 4), "R[1] = 27\ns = 26\n");
}

TEST(MicroOps, RuntimeIfBothBranches) {
  MicroHarness h(R"(
    if (R[0] == 0) { s = 111; } else { s = 222; }
  )");
  EXPECT_EQ(h.run_both_ways(0, 0), "s = 111\n");
}

TEST(MicroOps, NestedIfs) {
  MicroHarness h(R"(
    R[0] = a;
    if (R[0] > 5) {
      if (R[0] > 50) { s = 3; } else { s = 2; }
    } else {
      s = 1;
    }
  )");
  EXPECT_NE(h.run_both_ways(100, 0).find("s = 3"), std::string::npos);
  EXPECT_NE(h.run_both_ways(10, 0).find("s = 2"), std::string::npos);
  EXPECT_NE(h.run_both_ways(1, 0).find("s = 1"), std::string::npos);
}

TEST(MicroOps, ShortCircuitAnd) {
  // The rhs (a memory access that would trap) must not execute when the
  // lhs already decides. m[32] is out of bounds.
  MicroHarness h(R"(
    if (R[0] != 0 && m[R[1] + 32] > 0) { s = 1; } else { s = 2; }
  )");
  // R[0] == 0 -> short circuit avoids the out-of-bounds m[32].
  EXPECT_EQ(h.run_both_ways(0, 0), "s = 2\n");
}

TEST(MicroOps, ShortCircuitOr) {
  MicroHarness h(R"(
    R[0] = 7;
    if (R[0] != 0 || m[R[1] + 32] > 0) { s = 1; } else { s = 2; }
  )");
  EXPECT_NE(h.run_both_ways(0, 0).find("s = 1"), std::string::npos);
}

TEST(MicroOps, LogicalResultIsNormalized) {
  MicroHarness h("R[0] = 5; s = R[0] && 9;");
  EXPECT_NE(h.run_both_ways(0, 0).find("s = 1"), std::string::npos);
}

TEST(MicroOps, TernarySelectsLazily) {
  MicroHarness h("s = R[0] == 0 ? 10 : m[R[1] + 32];");
  EXPECT_EQ(h.run_both_ways(0, 0), "s = 10\n");
}

TEST(MicroOps, LocalsAndMemory) {
  MicroHarness h(R"(
    int32 t = a + b;
    int32 u;
    u = t * t;
    m[3] = u;
    s = m[3] - 1;
  )");
  EXPECT_EQ(h.run_both_ways(3, 4), "m[3] = 49\ns = 48\n");
}

TEST(MicroOps, ControlIntrinsics) {
  MicroHarness h("stall(a); flush(); halt(); s = 1;");
  h.run_both_ways(5, 0);
}

TEST(MicroOps, IntrinsicsWithRuntimeArgs) {
  MicroHarness h(R"(
    R[0] = a;
    s = sat(R[0] * R[0] * R[0], 16) + zext(sext(R[0], 4), 8)
        + min(R[0], b) + max(R[0], b) + abs(0 - R[0]);
  )");
  h.run_both_ways(9, 4);
  h.run_both_ways(200, 100);
}

TEST(MicroOps, DivisionByZeroThrowsInBoth) {
  MicroHarness h("s = 1 / R[0];");
  const SpecProgram prog = h.program(0, 0);
  ProcessorState state(*h.model);
  PipelineControl control;
  Evaluator eval(state, control);
  EXPECT_THROW(eval.exec_flat(prog.stmts, prog.num_locals), SimError);
  MicroProgram mp = lower_to_microops(prog);
  std::vector<std::int64_t> temps;
  EXPECT_THROW(run_microops(mp, state, control, temps), SimError);
}

TEST(MicroOps, DisassemblyIsReadable) {
  MicroHarness h("s = a + R[0];");
  MicroProgram mp = lower_to_microops(h.program(7, 0));
  const std::string text = microops_to_string(mp);
  EXPECT_NE(text.find("= 7"), std::string::npos) << text;
  EXPECT_NE(text.find("res"), std::string::npos);
}

TEST(MicroOps, EmptyProgramIsEmpty) {
  MicroHarness h("s = a;");  // placeholder; build an empty SpecProgram
  SpecProgram empty;
  MicroProgram mp = lower_to_microops(empty);
  EXPECT_TRUE(mp.empty());
  ProcessorState state(*h.model);
  PipelineControl control;
  std::vector<std::int64_t> temps;
  run_microops(mp, state, control, temps);  // no-op, no crash
}

/// Property sweep: a mixed program over many operand values behaves
/// identically through both execution paths.
class MicroOpsSweep : public ::testing::TestWithParam<int> {};

TEST_P(MicroOpsSweep, TreeWalkAndMicroOpsAgree) {
  static MicroHarness harness(R"(
    int32 t = a * b + 3;
    R[0] = t;
    R[1] = t >> 2;
    if (t % 3 == 0) { m[a % 32] = t; } else { m[b % 32] = 0 - t; }
    s = (R[0] > R[1] ? R[0] - R[1] : R[1]) ^ (a | b);
  )");
  const int i = GetParam();
  harness.run_both_ways(static_cast<std::uint8_t>(i * 37 + 1),
                        static_cast<std::uint8_t>(i * 11 + 5));
}

INSTANTIATE_TEST_SUITE_P(Values, MicroOpsSweep, ::testing::Range(0, 32));

}  // namespace
}  // namespace lisasim
