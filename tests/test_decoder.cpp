// Decoder-generator tests: mask pruning, group alternatives, hierarchical
// codings, encode/decode round trips (property-style sweeps), packet
// chaining and failure modes.
#include <gtest/gtest.h>

#include "decode/decoder.hpp"
#include "model/sema.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

std::unique_ptr<Model> tiny_model() {
  return compile_model_source_or_throw(targets::tinydsp_model_source(),
                                       "tinydsp");
}

TEST(Decoder, DecodesDistinctOpcodes) {
  auto model = tiny_model();
  Decoder decoder(*model);
  struct Case {
    std::uint32_t word;
    const char* op;
  };
  const Case cases[] = {
      {0x40000000u, "arith"},  // 0b01 prefix, all fields zero
      {0x20000000u, "ld"},     // opcode 0b0010
      {0x30000000u, "st"},     // opcode 0b0011
      {0x80000000u, "mvk"},    // opcode 0b1000
      {0x90000000u, "br"},     // opcode 0b1001
      {0xF0000000u, "halt_op"},
  };
  for (const auto& c : cases) {
    DecodedNodePtr node = decoder.decode(c.word);
    ASSERT_NE(node, nullptr) << c.op;
    ASSERT_EQ(node->op->name, "instruction");
    const DecodedNode* insn = node->children[0].get();
    ASSERT_NE(insn, nullptr);
    EXPECT_EQ(insn->op->name, c.op);
  }
}

TEST(Decoder, RejectsUndecodableWords) {
  auto model = tiny_model();
  Decoder decoder(*model);
  // opcode 0b0000 is unassigned except NOP=0b0001; 0b0111... exists (arith)
  EXPECT_EQ(decoder.decode(0x00000000u), nullptr);   // all zero
  EXPECT_EQ(decoder.decode(0xE0000000u), nullptr);   // opcode 0b1110
}

TEST(Decoder, RejectsNonzeroPadBits) {
  auto model = tiny_model();
  Decoder decoder(*model);
  // HALT with a stray bit in the zero padding must not decode.
  EXPECT_NE(decoder.decode(0xF0000000u), nullptr);
  EXPECT_EQ(decoder.decode(0xF0000001u), nullptr);
}

TEST(Decoder, FieldsExtractMsbFirst) {
  auto model = tiny_model();
  Decoder decoder(*model);
  // mvk: 0b1000 rd(4) imm(16) pad(8). rd=0x5, imm=0xBEEF.
  const std::uint32_t word = (0b1000u << 28) | (0x5u << 24) | (0xBEEFu << 8);
  DecodedNodePtr node = decoder.decode(word);
  ASSERT_NE(node, nullptr);
  const DecodedNode* mvk = node->children[0].get();
  ASSERT_EQ(mvk->op->name, "mvk");
  // label slot 0 = imm; child rd holds its own idx field.
  const int imm_slot = mvk->op->label_slot(model->interner().intern("imm"));
  ASSERT_GE(imm_slot, 0);
  EXPECT_EQ(mvk->fields[static_cast<std::size_t>(imm_slot)], 0xBEEF);
  const int rd_slot = mvk->op->child_slot(model->interner().intern("rd"));
  ASSERT_GE(rd_slot, 0);
  const DecodedNode* rd = mvk->children[static_cast<std::size_t>(rd_slot)].get();
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->op->name, "reg");
  EXPECT_EQ(rd->fields[0], 0x5);
}

TEST(Decoder, ParentPointersAreSet) {
  auto model = tiny_model();
  Decoder decoder(*model);
  DecodedNodePtr node =
      decoder.decode((0b1000u << 28) | (0x5u << 24) | (0x1234u << 8));
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->parent, nullptr);
  const DecodedNode* mvk = node->children[0].get();
  EXPECT_EQ(mvk->parent, node.get());
  for (const auto& child : mvk->children) {
    if (child) {
      EXPECT_EQ(child->parent, mvk);
    }
  }
}

TEST(Decoder, ActivationOnlyInstancesAreMaterialized) {
  auto model = tiny_model();
  Decoder decoder(*model);
  // ld has an activation-only child ld_wb, not bound by coding.
  const std::uint32_t word = 0x20000000u | (0x1u << 24) | (0x2u << 20);
  DecodedNodePtr node = decoder.decode(word);
  const DecodedNode* ld = node->children[0].get();
  ASSERT_EQ(ld->op->name, "ld");
  const int wb_slot = ld->op->child_slot(model->interner().intern("ld_wb"));
  ASSERT_GE(wb_slot, 0);
  const DecodedNode* wb = ld->children[static_cast<std::size_t>(wb_slot)].get();
  ASSERT_NE(wb, nullptr);
  EXPECT_EQ(wb->op->name, "ld_wb");
  EXPECT_EQ(wb->parent, ld);
}

/// Property: encode(decode(word)) == word for every word that decodes.
class TinyDspRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TinyDspRoundTrip, EncodeDecode) {
  static const std::unique_ptr<Model> model = tiny_model();
  static const Decoder decoder(*model);
  // Derive a pseudo-random word from the seed, then mask to plausible
  // opcodes so a good fraction decodes.
  std::uint64_t x = GetParam() * 0x9E3779B97F4A7C15ull + 1;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  const std::uint32_t word = static_cast<std::uint32_t>(x);
  DecodedNodePtr node = decoder.decode(word);
  if (!node) return;  // undecodable words are not part of the property
  EXPECT_EQ(decoder.encode(*node), word);
}

INSTANTIATE_TEST_SUITE_P(RandomWords, TinyDspRoundTrip,
                         ::testing::Range(0u, 64u));

/// Property: for the c62x model, words built from a systematic field sweep
/// decode and re-encode exactly.
class C62xFieldSweep : public ::testing::TestWithParam<int> {};

TEST_P(C62xFieldSweep, EncodeDecode) {
  static const std::unique_ptr<Model> model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  static const Decoder decoder(*model);
  const int i = GetParam();
  // add: pred(4)=0, opcode 000001, dst, src1, src2, pad, p-bit i&1.
  const std::uint32_t dst = static_cast<std::uint32_t>(i) % 32;
  const std::uint32_t src1 = static_cast<std::uint32_t>(i * 7) % 32;
  const std::uint32_t src2 = static_cast<std::uint32_t>(i * 13) % 32;
  const std::uint32_t word = (0b000001u << 22) | (dst << 17) | (src1 << 12) |
                             (src2 << 7) | (static_cast<std::uint32_t>(i) & 1);
  DecodedNodePtr node = decoder.decode(word);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(decoder.encode(*node), word);
}

INSTANTIATE_TEST_SUITE_P(AddFields, C62xFieldSweep, ::testing::Range(0, 48));

TEST(Decoder, PacketChainingFollowsParallelBit) {
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  const std::uint32_t add = 0b000001u << 22;
  std::vector<std::int64_t> words = {add | 1, add | 1, add, add};
  DecodedPacket packet = decoder.decode_packet(words, 0);
  EXPECT_EQ(packet.words, 3u);
  ASSERT_EQ(packet.slots.size(), 3u);
  packet = decoder.decode_packet(words, 3);
  EXPECT_EQ(packet.words, 1u);
}

TEST(Decoder, PacketTooLongThrows) {
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  const std::uint32_t add_chained = (0b000001u << 22) | 1;
  std::vector<std::int64_t> words(16, add_chained);
  EXPECT_THROW(decoder.decode_packet(words, 0), SimError);
}

TEST(Decoder, PacketPastEndThrows) {
  auto model = tiny_model();
  Decoder decoder(*model);
  std::vector<std::int64_t> words = {static_cast<std::int64_t>(0xF0000000u)};
  EXPECT_THROW(decoder.decode_packet(words, 5), SimError);
}

TEST(Decoder, SingleIssueModelHasOneSlotPackets) {
  auto model = tiny_model();
  Decoder decoder(*model);
  std::vector<std::int64_t> words = {
      static_cast<std::int64_t>(0xF0000001u)};  // odd bit, but no p-bit cfg
  // tinydsp has PACKET 1: chains_next is always false.
  EXPECT_FALSE(decoder.chains_next(0xFFFFFFFFull));
}

TEST(Decoder, GroupAlternativeOrderDoesNotMatterForDisjointMasks) {
  // Two alternatives with disjoint fixed bits decode correctly regardless
  // of declaration order.
  const char* src2 = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY int32 m[4];
               PIPELINE pipe = { EX; }; }
    FETCH { WORD 8; MEMORY m; }
    OPERATION a { DECLARE { LABEL f; } CODING { 0b1 f=0bx[7] } }
    OPERATION b { DECLARE { LABEL f; } CODING { 0b0 f=0bx[7] } }
    OPERATION instruction {
      DECLARE { GROUP g = { a || b }; }
      CODING { g }
    }
  )";
  auto model = compile_model_source_or_throw(src2, "order-test");
  Decoder decoder(*model);
  EXPECT_EQ(decoder.decode(0x80)->children[0]->op->name, "a");
  EXPECT_EQ(decoder.decode(0x00)->children[0]->op->name, "b");
  EXPECT_EQ(decoder.decode(0xFF)->children[0]->op->name, "a");
}

TEST(Decoder, NestedGroupsDecodeDepthFirst) {
  const char* source = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY int32 m[4];
               PIPELINE pipe = { EX; }; }
    FETCH { WORD 8; MEMORY m; }
    OPERATION leaf1 { CODING { 0b01 } }
    OPERATION leaf2 { CODING { 0b10 } }
    OPERATION mid {
      DECLARE { GROUP l = { leaf1 || leaf2 }; LABEL f; }
      CODING { 0b1 l f=0bx[2] }
    }
    OPERATION other {
      DECLARE { LABEL f; }
      CODING { 0b0 f=0bx[4] }
    }
    OPERATION instruction {
      DECLARE { GROUP g = { mid || other }; LABEL top; }
      CODING { g top=0bx[3] }
    }
  )";
  auto model = compile_model_source_or_throw(source, "nested-test");
  Decoder decoder(*model);
  // word: g=mid(1) leaf2(10) f=11 | top=101  -> 0b1 10 11 101
  DecodedNodePtr node = decoder.decode(0b11011101);
  ASSERT_NE(node, nullptr);
  const DecodedNode* mid = node->children[0].get();
  ASSERT_EQ(mid->op->name, "mid");
  EXPECT_EQ(mid->children[0]->op->name, "leaf2");
  EXPECT_EQ(mid->fields[0], 0b11);
  EXPECT_EQ(node->fields[0], 0b101);
  EXPECT_EQ(decoder.encode(*node), 0b11011101u);
}

TEST(Decoder, StatsCountCodedOperations) {
  auto model = tiny_model();
  Decoder decoder(*model);
  EXPECT_EQ(decoder.stats().operations, model->operations.size());
  EXPECT_GT(decoder.stats().coding_operations, 0u);
  EXPECT_LE(decoder.stats().coding_operations, decoder.stats().operations);
}

}  // namespace
}  // namespace lisasim
