// Resilience subsystem: fault-plan parsing, the RunSupervisor's
// retry/degrade ladder under every injected fault kind at every simulation
// level, batched per-lane recovery, and the bit-equality invariant — a
// supervised run that absorbed faults must finish with exactly the
// RunResult and architectural state of an unfaulted interpretive run.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "resilience/fault.hpp"
#include "resilience/supervisor.hpp"
#include "sim/checkpoint_io.hpp"
#include "sim/table_cache.hpp"
#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

// Loop whose trip count is dmem[0] (defaults to the .word below); the
// series sum lands in dmem[16], so timing and final state both depend on
// executing every iteration correctly. Register and data-memory traffic on
// every iteration gives the memory-fault hook something to trip on.
constexpr std::string_view kSumLoop = R"(
        MVK 0, R0
        LD R1, R0, 0      ; trip count = dmem[0]
        NOP 2
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   ST R2, R3, 15     ; dmem[16] = sum
        HALT
        .data dmem 0
        .word 24
)";

// Never halts: the caller-watchdog tests need a runaway program.
constexpr std::string_view kSpin = R"(
        MVK 1, R1
loop:   BZ R1, done
        B loop
done:   HALT
)";

constexpr SimLevel kLevels[] = {
    SimLevel::kInterpretive,   SimLevel::kDecodeCached,
    SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic,
    SimLevel::kTrace,
};

constexpr FaultKind kKinds[] = {
    FaultKind::kMemory,      FaultKind::kGuardStorm, FaultKind::kCacheEvict,
    FaultKind::kCacheCorrupt, FaultKind::kCompile,   FaultKind::kWatchdog,
    FaultKind::kStuck,
};

struct Reference {
  RunResult result;
  std::string dump;
};

Reference interp_reference(const Model& model, const LoadedProgram& program) {
  InterpSimulator sim(model);
  sim.load(program);
  Reference ref;
  ref.result = sim.run();
  ref.dump = sim.state().dump_nonzero();
  return ref;
}

class ResilienceTest : public ::testing::Test {
 protected:
  TestTarget target_{targets::tinydsp_model_source(), "tinydsp"};
};

TEST(FaultPlan, ParsesPointSpecs) {
  const FaultPoint memory = FaultPlan::parse_point("memory@100");
  EXPECT_EQ(memory.kind, FaultKind::kMemory);
  EXPECT_EQ(memory.cycle, 100u);
  EXPECT_EQ(memory.repeat, 1u);

  const FaultPoint watchdog = FaultPlan::parse_point("watchdog@50x3");
  EXPECT_EQ(watchdog.kind, FaultKind::kWatchdog);
  EXPECT_EQ(watchdog.cycle, 50u);
  EXPECT_EQ(watchdog.repeat, 3u);

  const FaultPlan plan = FaultPlan::parse("memory@8,cache-evict@20x2");
  ASSERT_EQ(plan.points.size(), 2u);
  EXPECT_EQ(plan.describe(), "memory@8,cache-evict@20x2");

  EXPECT_THROW(FaultPlan::parse_point("memory"), SimError);
  EXPECT_THROW(FaultPlan::parse_point("cosmic-ray@5"), SimError);
  EXPECT_THROW(FaultPlan::parse_point("memory@notanumber"), SimError);
  EXPECT_THROW(FaultPlan::parse_point("memory@5x0"), SimError);
}

TEST(FaultPlan, KindNamesRoundTrip) {
  for (const FaultKind kind : kKinds) {
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(kind), parsed))
        << fault_kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(FaultPlan, RandomPlansAreDeterministic) {
  const FaultPlan a = FaultPlan::random(42, 1000, 8);
  const FaultPlan b = FaultPlan::random(42, 1000, 8);
  ASSERT_EQ(a.points.size(), 8u);
  EXPECT_EQ(a.points, b.points);
  const FaultPlan c = FaultPlan::random(43, 1000, 8);
  EXPECT_NE(a.points, c.points);
  for (const FaultPoint& point : a.points) {
    EXPECT_GE(point.cycle, 1u);
    EXPECT_LT(point.cycle, 1000u);
    EXPECT_GE(point.repeat, 1u);
    EXPECT_LE(point.repeat, 3u);
  }
}

TEST(FaultInjector, FiresAtCycleAndHonorsRepeat) {
  FaultPlan plan = FaultPlan::parse("memory@10x2,watchdog@20");
  FaultInjector injector(plan);
  EXPECT_EQ(injector.pending(), 3u);
  EXPECT_EQ(injector.next_stop(0), 10u);
  EXPECT_TRUE(injector.take_due(5).empty());
  ASSERT_EQ(injector.take_due(10).size(), 1u);  // first firing
  EXPECT_EQ(injector.next_stop(10), 20u);
  ASSERT_EQ(injector.take_due(10).size(), 1u);  // recovery rewind re-fires
  EXPECT_TRUE(injector.take_due(10).empty());   // repeat budget exhausted
  ASSERT_EQ(injector.take_due(20).size(), 1u);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.next_stop(0), UINT64_MAX);
  EXPECT_EQ(injector.fired(), 3u);
}

// A supervised run with no faults must be indistinguishable from an
// unfaulted run at every level: same RunResult, same state, empty log.
TEST_F(ResilienceTest, NoFaultRunMatchesUnfaultedAtEveryLevel) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  for (const SimLevel level : kLevels) {
    SCOPED_TRACE(sim_level_name(level));
    SimTableCache cache(8);
    SupervisorConfig config;
    config.level = level;
    config.cache = &cache;
    RunSupervisor supervisor(*target_.model, program, config);
    const SupervisedRun run = supervisor.run();
    EXPECT_EQ(run.result, ref.result);
    EXPECT_EQ(supervisor.state().dump_nonzero(), ref.dump);
    EXPECT_EQ(run.final_level, level);
    EXPECT_TRUE(run.log.events.empty());
  }
}

// The core acceptance matrix: every fault kind injected mid-run at every
// start level, and the supervised run must still finish bit-identical to
// the unfaulted interpretive oracle. Kinds that raise an error (memory,
// compile, watchdog) must additionally show recovery activity in the log.
TEST_F(ResilienceTest, EveryFaultKindAtEveryLevelStaysBitIdentical) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  ASSERT_GT(ref.result.cycles, 8u);
  const std::uint64_t mid = ref.result.cycles / 2;

  for (const SimLevel level : kLevels) {
    for (const FaultKind kind : kKinds) {
      SCOPED_TRACE(std::string(sim_level_name(level)) + " / " +
                   fault_kind_name(kind));
      SimTableCache cache(8);
      SupervisorConfig config;
      config.level = level;
      config.cache = &cache;
      config.guard_policy = GuardPolicy::kRecompile;
      config.faults.add({kind, mid, 1});
      RunSupervisor supervisor(*target_.model, program, config);
      const SupervisedRun run = supervisor.run();
      EXPECT_EQ(run.result, ref.result);
      EXPECT_EQ(supervisor.state().dump_nonzero(), ref.dump);
      EXPECT_EQ(run.log.faults_injected(), 1u);
      if (kind == FaultKind::kMemory || kind == FaultKind::kWatchdog) {
        EXPECT_GE(run.log.retries() + run.log.degradations(), 1u)
            << run.log.summary();
      }
      if (kind == FaultKind::kCompile &&
          (level == SimLevel::kCompiledDynamic ||
           level == SimLevel::kCompiledStatic || level == SimLevel::kTrace)) {
        EXPECT_GE(run.log.retries(), 1u) << run.log.summary();
      }
    }
  }
}

// A persistent fault (repeat > 2 * per-level retry budget at every level)
// must walk the whole ladder down to the interpretive floor, which absorbs
// the remaining firings as retries, and still finish bit-identical.
TEST_F(ResilienceTest, PersistentFaultDegradesToInterpretiveFloor) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  SimTableCache cache(8);
  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.cache = &cache;
  config.max_retries_per_level = 1;
  config.faults.add({FaultKind::kMemory, mid, 10});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();

  EXPECT_EQ(run.result, ref.result);
  EXPECT_EQ(supervisor.state().dump_nonzero(), ref.dump);
  EXPECT_EQ(run.final_level, SimLevel::kInterpretive) << run.log.summary();
  // static -> dynamic -> decode-cached -> interpretive.
  EXPECT_EQ(run.log.degradations(), 3u) << run.log.summary();
  EXPECT_EQ(run.log.faults_injected(), 10u);
}

// The full ladder from the top: a trace-level run under a persistent fault
// crosses all four downward transitions.
TEST_F(ResilienceTest, TraceLevelWalksAllFourRungs) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  SimTableCache cache(8);
  SupervisorConfig config;
  config.level = SimLevel::kTrace;
  config.cache = &cache;
  config.max_retries_per_level = 1;
  config.faults.add({FaultKind::kMemory, mid, 12});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();

  EXPECT_EQ(run.result, ref.result);
  EXPECT_EQ(run.final_level, SimLevel::kInterpretive) << run.log.summary();
  EXPECT_EQ(run.log.degradations(), 4u) << run.log.summary();
}

// An exhausted recovery budget rethrows the fault (with a kGiveUp record)
// instead of looping forever.
TEST_F(ResilienceTest, RecoveryBudgetExhaustionGivesUp) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.max_total_recoveries = 3;
  config.faults.add({FaultKind::kMemory, mid, 100});
  RunSupervisor supervisor(*target_.model, program, config);
  try {
    supervisor.run();
    FAIL() << "expected the exhausted budget to rethrow";
  } catch (const SimError& error) {
    EXPECT_TRUE(error.recoverable());
    EXPECT_NE(std::string(error.what()).find("injected memory fault"),
              std::string::npos)
        << error.what();
  }
  const RecoveryLog& log = supervisor.log();
  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.events.back().kind, RecoveryEvent::Kind::kGiveUp);
}

// A caller-supplied watchdog expiring is an outcome of the run, not a
// fault: the supervisor must rethrow it even while absorbing real faults.
TEST_F(ResilienceTest, CallerWatchdogIsRethrownNotRecovered) {
  const LoadedProgram program = target_.assemble(kSpin);

  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.faults.add({FaultKind::kMemory, 10, 1});
  RunSupervisor supervisor(*target_.model, program, config);
  RunLimits limits;
  limits.watchdog_cycles = 200;
  try {
    supervisor.run(limits);
    FAIL() << "expected the caller watchdog to propagate";
  } catch (const SimError& error) {
    EXPECT_TRUE(error.recoverable());
    EXPECT_EQ(std::string_view(error.what()).substr(0, 9), "watchdog:")
        << error.what();
  }
}

// max_cycles is a soft per-run limit: the supervised run returns at the
// cap with the cycle count of an unfaulted capped run.
TEST_F(ResilienceTest, CallerMaxCyclesIsHonored) {
  const LoadedProgram program = target_.assemble(kSpin);
  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.quantum_cycles = 64;  // force several quantum re-entries
  RunSupervisor supervisor(*target_.model, program, config);
  RunLimits limits;
  limits.max_cycles = 1000;
  const SupervisedRun run = supervisor.run(limits);
  EXPECT_EQ(run.result.cycles, 1000u);
  EXPECT_FALSE(run.result.halted);
}

// An injected compile-shard failure at load time is retried (the failed
// load leaves the simulator intact) and then succeeds without degrading.
TEST_F(ResilienceTest, CompileFaultRetriesWithoutDegrading) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);

  SimTableCache cache(8);
  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.cache = &cache;
  config.faults.add({FaultKind::kCompile, 0, 1});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();

  EXPECT_EQ(run.result, ref.result);
  EXPECT_EQ(run.final_level, SimLevel::kCompiledStatic);
  EXPECT_EQ(run.log.retries(), 1u) << run.log.summary();
  EXPECT_EQ(run.log.degradations(), 0u) << run.log.summary();
}

// Corrupting cached-table fingerprints must be detected at the reload
// (stats_.corruptions) and silently repaired by recompilation.
TEST_F(ResilienceTest, CacheCorruptionIsDetectedAndRecompiled) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  SimTableCache cache(8);
  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.cache = &cache;
  config.faults.add({FaultKind::kCacheCorrupt, mid, 1});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();

  EXPECT_EQ(run.result, ref.result);
  EXPECT_EQ(supervisor.state().dump_nonzero(), ref.dump);
  EXPECT_GE(cache.stats().corruptions, 1u);
  EXPECT_EQ(run.final_level, SimLevel::kCompiledStatic);
}

// Periodic checkpointing bounds the replay distance but must not change
// the outcome.
TEST_F(ResilienceTest, PeriodicCheckpointsPreserveBitEquality) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  SupervisorConfig config;
  config.level = SimLevel::kCompiledDynamic;
  config.checkpoint_interval = 8;
  config.faults.add({FaultKind::kMemory, mid, 1});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();
  EXPECT_EQ(run.result, ref.result);
  EXPECT_EQ(supervisor.state().dump_nonzero(), ref.dump);
}

// Recovery events must reach an attached SimObserver, one on_recovery per
// logged event, without the observer standing the engine's trace tier
// down (it is never attached to the engine).
TEST_F(ResilienceTest, ObserverSeesEveryRecoveryEvent) {
  class CountingObserver final : public SimObserver {
   public:
    void on_fetch(std::uint64_t, std::uint64_t) override {}
    void on_execute(std::uint64_t, int, std::uint64_t) override {}
    void on_retire(std::uint64_t, std::uint64_t) override {}
    void on_flush(std::uint64_t, int) override {}
    void on_recovery(const RecoveryEvent&) override { ++recoveries; }
    unsigned recoveries = 0;
  };

  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  CountingObserver observer;
  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.observer = &observer;
  config.faults.add({FaultKind::kMemory, mid, 1});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();
  EXPECT_EQ(run.result, ref.result);
  EXPECT_GT(observer.recoveries, 0u);
  EXPECT_EQ(observer.recoveries, run.log.events.size());
}

TEST_F(ResilienceTest, SummaryRendersTransitions) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  const Reference ref = interp_reference(*target_.model, program);
  const std::uint64_t mid = ref.result.cycles / 2;

  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;
  config.max_retries_per_level = 1;
  config.faults.add({FaultKind::kMemory, mid, 4});
  RunSupervisor supervisor(*target_.model, program, config);
  const SupervisedRun run = supervisor.run();
  const std::string summary = run.log.summary();
  EXPECT_NE(summary.find("fault(s) injected"), std::string::npos) << summary;
  EXPECT_NE(summary.find("memory"), std::string::npos) << summary;
  EXPECT_NE(summary.find("retry"), std::string::npos) << summary;
  EXPECT_NE(summary.find("degrade"), std::string::npos) << summary;
}

void set_dmem0(const Model& model, ProcessorState& state, std::int64_t v) {
  const Resource* dmem = model.resource_by_name("dmem");
  ASSERT_NE(dmem, nullptr);
  state.write(dmem->id, 0, v);
}

// Batched supervision: a memory fault injected into one lane must retire
// and recover exactly that lane — replayed on a fresh sequential simulator
// at the degraded level and written back — while every other lane's
// outcome passes through untouched. All lanes end bit-identical to their
// unfaulted sequential references.
TEST_F(ResilienceTest, BatchRecoversOnlyTheFaultingLane) {
  constexpr unsigned kLanes = 4;
  constexpr unsigned kFaultLane = 2;
  const LoadedProgram program = target_.assemble(kSumLoop);

  SupervisorConfig config;
  config.level = SimLevel::kCompiledStatic;  // degrades to the interp floor
  config.faults.add({FaultKind::kMemory, 4, 1});
  BatchSupervisor batch(*target_.model, program, kLanes, config, kFaultLane);
  for (unsigned l = 0; l < kLanes; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), 4 * l + 1);
  batch.run();

  for (unsigned l = 0; l < kLanes; ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    // Unfaulted sequential reference with the same stimulus.
    CompiledSimulator seq(*target_.model, SimLevel::kCompiledStatic);
    seq.load(program);
    set_dmem0(*target_.model, seq.state(), 4 * l + 1);
    const RunResult r_seq = seq.run();

    const SupervisedLane& lane = batch.lane(l);
    EXPECT_FALSE(lane.run.errored) << lane.run.error;
    EXPECT_EQ(lane.run.result, r_seq);
    EXPECT_EQ(batch.lane_state(l).dump_nonzero(),
              seq.state().dump_nonzero());
    if (l == kFaultLane) {
      EXPECT_TRUE(lane.recovered);
      EXPECT_EQ(lane.final_level, SimLevel::kInterpretive);
      EXPECT_GE(lane.log.faults_injected(), 1u);
      EXPECT_GE(lane.log.degradations(), 1u);
    } else {
      EXPECT_FALSE(lane.recovered);
      EXPECT_EQ(lane.final_level, SimLevel::kCompiledStatic);
      EXPECT_TRUE(lane.log.events.empty());
    }
  }
}

// An injected batch watchdog (the caller set none) retires lanes
// recoverably; every casualty is replayed and still ends bit-identical.
TEST_F(ResilienceTest, BatchInjectedWatchdogRecoversCasualties) {
  constexpr unsigned kLanes = 3;
  const LoadedProgram program = target_.assemble(kSumLoop);

  SupervisorConfig config;
  config.level = SimLevel::kDecodeCached;  // replay level for casualties
  config.faults.add({FaultKind::kWatchdog, 6, 1});
  BatchSupervisor batch(*target_.model, program, kLanes, config, 0);
  for (unsigned l = 0; l < kLanes; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), 3 * l + 2);
  batch.run();

  unsigned recovered = 0;
  for (unsigned l = 0; l < kLanes; ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    CompiledSimulator seq(*target_.model, SimLevel::kCompiledStatic);
    seq.load(program);
    set_dmem0(*target_.model, seq.state(), 3 * l + 2);
    const RunResult r_seq = seq.run();

    const SupervisedLane& lane = batch.lane(l);
    EXPECT_FALSE(lane.run.errored) << lane.run.error;
    EXPECT_EQ(lane.run.result, r_seq);
    EXPECT_EQ(batch.lane_state(l).dump_nonzero(),
              seq.state().dump_nonzero());
    if (lane.recovered) {
      ++recovered;
      EXPECT_EQ(lane.final_level, SimLevel::kDecodeCached);
    }
  }
  // The tiny injected watchdog fires before any lane halts organically.
  EXPECT_GE(recovered, 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint text is untrusted input. The corruption matrix takes a real
// mid-run checkpoint (in-flight tree-walk packets, so the serialization
// exercises slots, queues and paths) and mutates *every line* of it five
// ways. Each mutant must either parse cleanly or throw a *recoverable*
// SimError; a mutant that parses must then restore cleanly or throw a
// SimError — never crash, never leave a half-restored simulator running.

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST_F(ResilienceTest, CheckpointCorruptionMatrixNeverCrashes) {
  const LoadedProgram program = target_.assemble(kSumLoop);
  InterpSimulator sim(*target_.model);
  sim.load(program);
  sim.run(10);  // mid-run: pipeline holds in-flight tree-walk packets
  const std::string text = serialize_checkpoint(sim.save_checkpoint());
  const std::vector<std::string> lines = split_lines(text);
  ASSERT_GT(lines.size(), 5u);

  // Sanity: the untouched text round-trips, and an appended copy (a
  // duplicated file) is rejected as trailing garbage.
  EXPECT_NO_THROW(parse_checkpoint(text));
  EXPECT_THROW(parse_checkpoint(text + text), SimError);

  unsigned parsed_ok = 0, rejected = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (int mode = 0; mode < 5; ++mode) {
      SCOPED_TRACE("line " + std::to_string(i) + " mode " +
                   std::to_string(mode));
      std::vector<std::string> mutant = lines;
      switch (mode) {
        case 0:  // drop the line
          mutant.erase(mutant.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        case 1:  // duplicate the line (duplicated section / element)
          mutant.insert(mutant.begin() + static_cast<std::ptrdiff_t>(i),
                        lines[i]);
          break;
        case 2:  // truncate the file at this line
          mutant.resize(i);
          break;
        case 3:  // blow up the first number on the line (oversized count
                 // / out-of-range index)
          for (char& c : mutant[i]) {
            if (c >= '0' && c <= '9') {
              mutant[i] += "99999999999999999999";
              break;
            }
          }
          break;
        case 4:  // negate the first number (sign corruption)
          for (std::size_t k = 0; k < mutant[i].size(); ++k) {
            if (mutant[i][k] >= '0' && mutant[i][k] <= '9') {
              mutant[i].insert(k, "-");
              break;
            }
          }
          break;
      }
      const std::string corrupted = join_lines(mutant);
      EngineCheckpoint cp;
      try {
        cp = parse_checkpoint(corrupted);
        ++parsed_ok;
      } catch (const SimError& error) {
        EXPECT_TRUE(error.recoverable())
            << "parse error must be recoverable: " << error.what();
        ++rejected;
        continue;
      }
      // Structurally valid (the mutation only changed payload data): the
      // restore must either succeed or reject with a SimError.
      InterpSimulator victim(*target_.model);
      victim.load(program);
      try {
        victim.restore_checkpoint(cp);
        victim.run(50);
      } catch (const SimError&) {
        // fine: rejected or deferred as a simulation error
      }
    }
  }
  // The matrix must actually exercise both outcomes.
  EXPECT_GT(rejected, lines.size()) << "mutations were not detected";
  EXPECT_GT(parsed_ok, 0u);
}

TEST_F(ResilienceTest, CheckpointOversizedCountsAreRejectedEarly) {
  // A hostile count must fail fast (recoverably), not allocate first.
  EXPECT_THROW(
      parse_checkpoint("lisasim-checkpoint 1\ntotal_cycles 0\n"
                       "interrupts 99999999999\n"),
      SimError);
  EXPECT_THROW(
      parse_checkpoint("lisasim-checkpoint 1\ntotal_cycles 0\n"
                       "interrupts 0\nstate 99999999999999\n1 2 3\n"),
      SimError);
  EXPECT_THROW(parse_batch_checkpoint("lisasim-batch-checkpoint 1\n"
                                      "lanes 4096\n"),
               SimError);
  try {
    parse_checkpoint("lisasim-checkpoint 1\ntotal_cycles 0\n"
                     "interrupts 0\nstate 0\nslots 300\n");
    FAIL() << "expected slot-count cap";
  } catch (const SimError& error) {
    EXPECT_TRUE(error.recoverable());
    EXPECT_NE(std::string(error.what()).find("implausible"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace lisasim
