// The native AOT tier (SimLevel::kNative): dlopen'd per-program compiled
// region dispatch on top of the trace tier, with a disk-backed artifact
// cache. The paper's accuracy claim extends to this sixth level — every
// test here holds the native tier to bit-identical agreement with the
// interpretive oracle — plus the tier-specific seams: the emitted C ABI
// (pinned as a golden string), warm-artifact reload across simulator
// instances, checkpoint round trips, SMC under both guard policies, and
// supervisor degradation out of a faulted native run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "codegen/cppgen.hpp"
#include "codegen/native_abi.hpp"
#include "codegen/nativegen.hpp"
#include "resilience/supervisor.hpp"
#include "sim_test_util.hpp"
#include "sim/native.hpp"
#include "targets/c62x.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;
namespace fs = std::filesystem;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Fresh empty directory under the test temp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A native-level simulator configured for deterministic tests: eager
/// trace formation and a blocking -O0 compile round, so every run sees
/// the fully compiled region set.
void configure_native(CompiledSimulator& sim, GuardPolicy policy) {
  TraceConfig eager;
  eager.hot_threshold = 1;
  eager.min_trace_cycles = 1;
  sim.set_trace_config(eager);
  NativeConfig native;
  native.blocking = true;
  native.opt_level = 0;
  sim.set_native_config(native);
  sim.set_guard_policy(policy);
}

struct Reference {
  RunResult result;
  std::string dump;
};

Reference interp_reference(const Model& model, const LoadedProgram& p,
                           std::uint64_t max_cycles = 2'000'000) {
  InterpSimulator interp(model);
  interp.load(p);
  Reference ref;
  ref.result = interp.run(max_cycles);
  ref.dump = interp.state().dump_nonzero();
  return ref;
}

// ---------------------------------------------------------------- ABI pin

// The embedded declaration text IS the compiled artifact ABI: any edit
// must bump kNativeAbiVersion and update this golden copy consciously.
TEST(NativeAbi, EmbeddedTextIsPinned) {
  constexpr const char kGolden[] =
      R"(/* lisasim native AOT region ABI, version 1 */
typedef struct LisaNativeCtx {
  int64_t* state;
  int64_t fault_arg;
  int32_t stall;
  uint8_t flush;
  uint8_t halt;
  uint8_t reserved0;
  uint8_t reserved1;
} LisaNativeCtx;

typedef int32_t (*LisaNativeRegionFn)(LisaNativeCtx*);

typedef struct LisaNativeFault {
  int32_t kind; /* 0 div0, 1 rem0, 2 oob read, 3 oob write */
  int32_t res;  /* faulting resource id for the oob kinds */
} LisaNativeFault;

typedef struct LisaNativeRegion {
  uint64_t key;  /* micro-arena offset of the lowered span */
  uint32_t kind; /* 0 static table span, 1 trace body */
  uint32_t len;  /* micro-op count of the lowered span */
  uint32_t num_temps;
  uint32_t fault_count;
  LisaNativeRegionFn fn;
  const LisaNativeFault* faults;
} LisaNativeRegion;

typedef struct LisaNativeEntry {
  uint32_t abi_version;
  uint32_t region_count;
  uint64_t model_hash;
  uint64_t program_hash;
  uint64_t content_hash;
  uint64_t state_elements;
  const LisaNativeRegion* regions;
} LisaNativeEntry;
)";
  EXPECT_EQ(std::string(kNativeAbiText), std::string(kGolden));
  EXPECT_EQ(kNativeAbiVersion, 1u);
  EXPECT_STREQ(kNativeEntrySymbol, "lisa_native_entry");
}

// ------------------------------------------------------- source generation

// cppgen's embedding path: emit_main = false produces a self-contained
// helper prelude with no main() and no I/O driver — exactly what the
// native generator splices its regions onto.
TEST(NativeGen, CppgenEmbeddingPathEmitsNoMain) {
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(R"(
        MVK 5, A1
        ADD A1, A1, A2
        HALT
  )");
  CppGenOptions options;
  options.emit_main = false;
  const std::string embedded =
      generate_cpp_simulator(*target.model, p, options);
  EXPECT_EQ(embedded.find("int main("), std::string::npos);
  // The standalone path still has its driver.
  const std::string standalone = generate_cpp_simulator(*target.model, p);
  EXPECT_NE(standalone.find("int main("), std::string::npos);
}

TEST(NativeGen, GeneratedSourceEmbedsAbiAndEntry) {
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(R"(
        MVK 5, A1
        HALT
  )");
  NativeGenInput input;
  input.model = target.model.get();
  input.program = &p;
  input.model_hash = 1;
  input.program_hash = 2;
  NativeRegionSpec spec;
  spec.key = 0;
  spec.kind = 0;
  spec.num_temps = 1;
  MicroOp op{};
  op.kind = MKind::kConst;
  op.a = 0;
  op.imm = 42;
  spec.ops.push_back(op);
  input.regions.push_back(spec);

  const std::string source = generate_native_source(input);
  EXPECT_NE(source.find(kNativeAbiText), std::string::npos)
      << "ABI text must be embedded verbatim";
  EXPECT_NE(source.find("lisa_native_entry"), std::string::npos);
  EXPECT_EQ(source.find("int main("), std::string::npos);

  // The content hash keys the on-disk artifact: stable for equal inputs,
  // different once any op changes.
  const std::uint64_t h = native_content_hash(input);
  EXPECT_EQ(h, native_content_hash(input));
  input.regions[0].ops[0].imm = 43;
  EXPECT_NE(h, native_content_hash(input));
}

// ------------------------------------------------------ differential suite

// The paper's application suite, bit-identical across all six levels.
TEST(Native, PaperSuiteBitIdenticalAcrossAllSixLevels) {
  if (!NativeRuntime::toolchain_available())
    GTEST_SKIP() << "no out-of-process C++ toolchain";
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload suite[] = {
      workloads::make_fir(8, 16),
      workloads::make_adpcm(32),
      workloads::make_gsm(32),
  };
  for (const workloads::Workload& w : suite) {
    SCOPED_TRACE(w.name);
    const LoadedProgram p = target.assemble(w.asm_source);
    // The five pre-existing levels agree with the oracle...
    const testing::CrossLevelRun all =
        testing::run_all_levels(*target.model, p);

    // ...and the native tier must agree with all of them.
    CompiledSimulator sim(*target.model, SimLevel::kNative);
    configure_native(sim, GuardPolicy::kOff);
    sim.load(p);
    const RunResult r = sim.run(2'000'000);
    EXPECT_EQ(r, all.result);
    EXPECT_EQ(sim.state().dump_nonzero(), all.state_dump);

    // Prove regions actually dispatched (a silent fallback to the
    // micro-op core would make this test vacuous).
    const NativeStats* ns = sim.native_stats();
    ASSERT_NE(ns, nullptr);
    EXPECT_TRUE(sim.native_active()) << sim.native_last_error();
    EXPECT_GT(ns->trace_dispatches + ns->span_dispatches, 0u)
        << sim.native_last_error();

    // And the C reference model's expected memory contents hold.
    const Resource* dmem = target.model->resource_by_name("dmem");
    ASSERT_NE(dmem, nullptr);
    for (const auto& [address, value] : w.expected_dmem)
      EXPECT_EQ(sim.state().read(dmem->id, address), value)
          << w.name << " dmem[" << address << "]";
  }
}

// Self-modifying code under both guard policies: the one ProgramGuard
// stamp check per region dispatch must catch the patch exactly like the
// per-packet levels do.
TEST(Native, SmcAgreesUnderBothGuardPolicies) {
  if (!NativeRuntime::toolchain_available())
    GTEST_SKIP() << "no out-of-process C++ toolchain";
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_smc_c62x();
  const LoadedProgram p = target.assemble(w.asm_source);
  const Reference ref = interp_reference(*target.model, p);

  for (const GuardPolicy policy :
       {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    SCOPED_TRACE(guard_policy_name(policy));
    CompiledSimulator sim(*target.model, SimLevel::kNative);
    configure_native(sim, policy);
    sim.load(p);
    const RunResult r = sim.run(2'000'000);
    EXPECT_EQ(r, ref.result);
    EXPECT_EQ(sim.state().dump_nonzero(), ref.dump);
    EXPECT_GT(sim.guarded_writes(), 0u) << "program must self-modify";
  }
}

// Runtime faults must surface bit-identically: an out-of-bounds dmem read
// deep inside a native region raises the same SimError as the interpretive
// oracle. The loop stays under the default trace threshold so the fault
// fires inside a natively compiled static span, not a trace body.
TEST(Native, FaultsSurfaceIdenticallyToInterp) {
  if (!NativeRuntime::toolchain_available())
    GTEST_SKIP() << "no out-of-process C++ toolchain";
  TestTarget target(targets::c62x_model_source(), "c62x");
  // A5 walks 16380..16384 across dmem[16384]: iteration five reads one
  // past the end.
  const LoadedProgram p = target.assemble(R"(
        MVK 8, A1
        MVK 16380, A5
loop:   LDW A5, 0, A2
        ADDK 1, A5
        ADDK -1, A1
        [A1] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
  )");
  InterpSimulator interp(*target.model);
  interp.load(p);
  std::string oracle_error;
  try {
    interp.run(2'000'000);
  } catch (const SimError& e) {
    oracle_error = e.what();
  }
  ASSERT_FALSE(oracle_error.empty()) << "program must fault on the oracle";

  CompiledSimulator sim(*target.model, SimLevel::kNative);
  NativeConfig native;
  native.blocking = true;
  native.opt_level = 0;
  sim.set_native_config(native);
  sim.load(p);
  std::string native_error;
  try {
    sim.run(2'000'000);
  } catch (const SimError& e) {
    native_error = e.what();
  }
  EXPECT_EQ(native_error, oracle_error);
  const NativeStats* ns = sim.native_stats();
  ASSERT_NE(ns, nullptr);
  EXPECT_GT(ns->span_dispatches, 0u)
      << "the fault must fire on the native path: " << sim.native_last_error();
}

// ------------------------------------------------------------- checkpoints

TEST(Native, CheckpointRoundTripIntoFreshSimulator) {
  if (!NativeRuntime::toolchain_available())
    GTEST_SKIP() << "no out-of-process C++ toolchain";
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_fir(8, 16);
  const LoadedProgram p = target.assemble(w.asm_source);

  CompiledSimulator sim(*target.model, SimLevel::kNative);
  configure_native(sim, GuardPolicy::kRecompile);
  sim.load(p);
  ASSERT_FALSE(sim.run(60).halted);
  const EngineCheckpoint cp = sim.save_checkpoint();
  const RunResult tail = sim.run(2'000'000);
  ASSERT_TRUE(tail.halted);
  const std::string final_state = sim.state().dump_nonzero();

  // Replay in place: restore stales the guard; regions keep dispatching
  // only where still sound.
  sim.restore_checkpoint(cp);
  EXPECT_EQ(sim.run(2'000'000), tail);
  EXPECT_EQ(sim.state().dump_nonzero(), final_state);

  // And into a fresh simulator instance (its own native runtime and
  // compile round), as a stand-in for a fresh process.
  CompiledSimulator fresh(*target.model, SimLevel::kNative);
  configure_native(fresh, GuardPolicy::kRecompile);
  fresh.load(p);
  fresh.restore_checkpoint(cp);
  EXPECT_EQ(fresh.run(2'000'000), tail);
  EXPECT_TRUE(fresh.state() == sim.state());
}

// ---------------------------------------------------------- artifact cache

TEST(Native, WarmArtifactReloadSkipsTheCompiler) {
  if (!NativeRuntime::toolchain_available())
    GTEST_SKIP() << "no out-of-process C++ toolchain";
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_fir(8, 16);
  const LoadedProgram p = target.assemble(w.asm_source);
  const fs::path dir = fresh_dir("lisasim-native-warm");

  SimTableCache cache;
  cache.set_artifact_dir(dir.string());

  RunResult cold_result;
  std::string cold_dump;
  {
    CompiledSimulator sim(*target.model, SimLevel::kNative);
    configure_native(sim, GuardPolicy::kOff);
    sim.set_table_cache(&cache);
    sim.load(p);
    cold_result = sim.run(2'000'000);
    cold_dump = sim.state().dump_nonzero();
    const NativeStats* ns = sim.native_stats();
    ASSERT_NE(ns, nullptr);
    EXPECT_GT(ns->compiles, 0u) << "cold run must compile";
    EXPECT_EQ(ns->artifact_hits, 0u);
    EXPECT_GT(ns->artifact_misses, 0u);
  }
  {
    // A second simulator over the same cache: every artifact is served
    // from disk, the compiler never runs.
    CompiledSimulator sim(*target.model, SimLevel::kNative);
    configure_native(sim, GuardPolicy::kOff);
    sim.set_table_cache(&cache);
    sim.load(p);
    EXPECT_EQ(sim.run(2'000'000), cold_result);
    EXPECT_EQ(sim.state().dump_nonzero(), cold_dump);
    const NativeStats* ns = sim.native_stats();
    ASSERT_NE(ns, nullptr);
    EXPECT_EQ(ns->compiles, 0u) << "warm run must not compile";
    EXPECT_GT(ns->artifact_hits, 0u);
    EXPECT_TRUE(sim.native_active());
  }
  EXPECT_GT(cache.stats().artifact_hits, 0u);
}

TEST(Native, ArtifactByteCapEvictsOldestFirst) {
  const fs::path dir = fresh_dir("lisasim-native-evict");
  // Three fake 600-byte artifacts with strictly increasing mtimes.
  const std::string names[] = {
      "native-t-m" + hex16(1) + "-p" + hex16(10) + "-c" + hex16(100) + ".so",
      "native-t-m" + hex16(1) + "-p" + hex16(11) + "-c" + hex16(101) + ".so",
      "native-t-m" + hex16(1) + "-p" + hex16(12) + "-c" + hex16(102) + ".so",
  };
  auto stamp = fs::file_time_type::clock::now() - std::chrono::hours(3);
  for (const std::string& name : names) {
    std::ofstream(dir / name) << std::string(600, 'x');
    fs::last_write_time(dir / name, stamp);
    stamp += std::chrono::hours(1);
  }

  // A 1 KiB cap fits one artifact: enabling the directory evicts the two
  // oldest immediately.
  SimTableCache cache;
  cache.set_artifact_dir(dir.string(), 1024);
  EXPECT_EQ(cache.stats().artifact_evictions, 2u);
  EXPECT_FALSE(fs::exists(dir / names[0]));
  EXPECT_FALSE(fs::exists(dir / names[1]));
  EXPECT_TRUE(fs::exists(dir / names[2]));
}

TEST(Native, InvalidateAndClearDropMatchingArtifacts) {
  const fs::path dir = fresh_dir("lisasim-native-drop");
  const std::uint64_t stale_hash = 0xabcdef12u;
  const std::string stale = "native-t-m" + hex16(1) + "-p" +
                            hex16(stale_hash) + "-c" + hex16(7) + ".so";
  const std::string live =
      "native-t-m" + hex16(1) + "-p" + hex16(99) + "-c" + hex16(8) + ".so";
  SimTableCache cache;
  cache.set_artifact_dir(dir.string());
  std::ofstream(dir / stale) << "stale";
  std::ofstream(dir / live) << "live";

  // invalidate(program_hash) deletes only that program's artifacts...
  cache.invalidate(stale_hash);
  EXPECT_FALSE(fs::exists(dir / stale));
  EXPECT_TRUE(fs::exists(dir / live));

  // ...clear() deletes every artifact but keeps the directory usable.
  cache.clear();
  EXPECT_FALSE(fs::exists(dir / live));
  EXPECT_TRUE(fs::exists(dir));
  EXPECT_EQ(cache.artifact_dir(), dir.string());
}

// --------------------------------------------------------------- supervisor

// A persistently faulting native run must degrade down the ladder
// (native -> trace first) and still finish bit-identical to the oracle.
TEST(Native, SupervisorDegradesFaultedNativeRunToTrace) {
  if (!NativeRuntime::toolchain_available())
    GTEST_SKIP() << "no out-of-process C++ toolchain";
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_fir(8, 16);
  const LoadedProgram p = target.assemble(w.asm_source);
  const Reference ref = interp_reference(*target.model, p);
  ASSERT_GT(ref.result.cycles, 8u);

  SimTableCache cache(8);
  SupervisorConfig config;
  config.level = SimLevel::kNative;
  config.cache = &cache;
  config.max_retries_per_level = 1;
  config.faults.add({FaultKind::kMemory, ref.result.cycles / 2, 2});
  RunSupervisor supervisor(*target.model, p, config);
  const SupervisedRun run = supervisor.run();

  EXPECT_EQ(run.result, ref.result);
  EXPECT_EQ(supervisor.state().dump_nonzero(), ref.dump);
  EXPECT_EQ(run.final_level, SimLevel::kTrace) << run.log.summary();
  EXPECT_GE(run.log.degradations(), 1u) << run.log.summary();
}

}  // namespace
}  // namespace lisasim
