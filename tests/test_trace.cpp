// Hot-trace superblock tier (sim/trace.hpp): formation and chaining on hot
// loops, guard-driven invalidation on self-modifying code, checkpoint
// interaction, cache snapshot adoption, watchdog parity with the static
// level — plus the peephole guarantees the trace splicer depends on when
// it re-runs optimize_microops across former packet boundaries.
#include <gtest/gtest.h>

#include <string>

#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"
#include "sim_test_util.hpp"
#include "sim/checkpoint.hpp"
#include "sim/table_cache.hpp"
#include "sim/trace.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;
using testing::reg_of;

/// Hotness threshold 1 so even short test loops form superblocks.
TraceConfig eager_config() {
  TraceConfig config;
  config.hot_threshold = 1;
  config.min_trace_cycles = 1;
  return config;
}

/// A c62x counted loop: branch in DC with 5 exposed delay slots, all of
/// them doing work or padding — the packet sequence is statically
/// predictable, so the whole body splices into one superblock.
const char* kLoopAsm = R"(
        MVK 200, B0           ; trip count
        MVK 0, A3             ; sum
        MVK 1, A4             ; constant one
loop:   [B0] B loop
        ADD A3, B0, A3        ; sum += counter (delay slot 1)
        SUB B0, A4, B0        ; counter-- (delay slot 2)
        NOP 1
        NOP 1
        NOP 1                 ; delay slots 3..5
        HALT                  ; reached when B0 == 0
)";

// ------------------------------------------------ formation and chaining

TEST(Trace, FormsAndChainsOnHotLoop) {
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(kLoopAsm);

  CompiledSimulator reference(*target.model, SimLevel::kCompiledStatic);
  reference.load(p);
  const RunResult want = reference.run(2'000'000);
  ASSERT_TRUE(want.halted);

  CompiledSimulator sim(*target.model, SimLevel::kTrace);
  sim.set_trace_config(eager_config());
  sim.load(p);
  const RunResult got = sim.run(2'000'000);
  EXPECT_EQ(got, want);
  EXPECT_TRUE(reference.state() == sim.state());

  const TraceStats* stats = sim.trace_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->formed, 1u) << "hot loop must form a superblock";
  EXPECT_GT(stats->entries, 0u);
  EXPECT_GT(stats->chained, 0u) << "loop back-edge must chain trace->trace";
  EXPECT_GT(stats->trace_cycles, 0u);
  EXPECT_LE(stats->trace_cycles, got.cycles);
  EXPECT_GE(stats->side_exits, 1u) << "loop exit leaves through a side exit";
  EXPECT_EQ(stats->invalidated, 0u) << "nothing is stale without SMC";
  // Every entry ends in either a side exit or the run's end; chained
  // continuations never exceed the entry count's trace executions.
  EXPECT_LE(stats->side_exits, stats->entries);
}

TEST(Trace, DefaultThresholdGatesFormation) {
  // Five trips never reach the default hotness threshold (32): the trace
  // tier must stay cold and the run must still match the static level.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(R"(
        MVK 5, B0
        MVK 0, A3
        MVK 1, A4
loop:   [B0] B loop
        ADD A3, B0, A3
        SUB B0, A4, B0
        NOP 1
        NOP 1
        NOP 1
        HALT
  )");
  CompiledSimulator reference(*target.model, SimLevel::kCompiledStatic);
  reference.load(p);
  const RunResult want = reference.run(100'000);

  CompiledSimulator sim(*target.model, SimLevel::kTrace);
  sim.load(p);  // default TraceConfig
  EXPECT_EQ(sim.run(100'000), want);
  EXPECT_TRUE(reference.state() == sim.state());
  const TraceStats* stats = sim.trace_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->formed, 0u);
  EXPECT_EQ(stats->entries, 0u);
}

TEST(Trace, PaperSuiteMatchesStaticAndReference) {
  TestTarget target(targets::c62x_model_source(), "c62x");
  for (const workloads::Workload& w :
       {workloads::make_fir(8, 16), workloads::make_adpcm(24),
        workloads::make_gsm(40)}) {
    SCOPED_TRACE(w.name);
    const LoadedProgram p = target.assemble(w.asm_source);

    CompiledSimulator reference(*target.model, SimLevel::kCompiledStatic);
    reference.load(p);
    const RunResult want = reference.run(2'000'000);
    ASSERT_TRUE(want.halted);

    CompiledSimulator sim(*target.model, SimLevel::kTrace);
    sim.set_trace_config(eager_config());
    sim.load(p);
    EXPECT_EQ(sim.run(2'000'000), want);
    EXPECT_TRUE(reference.state() == sim.state());
    for (const auto& [address, value] : w.expected_dmem)
      EXPECT_EQ(reg_of(*target.model, sim.state(), "dmem", address), value)
          << w.name << " dmem[" << address << "]";
    const TraceStats* stats = sim.trace_stats();
    ASSERT_NE(stats, nullptr);
    EXPECT_GE(stats->formed, 1u) << w.name;
    EXPECT_GT(stats->trace_cycles, 0u) << w.name;
  }
}

// ------------------------------------------------ guard invalidation (SMC)

TEST(Trace, SelfModifyingCodeInvalidatesStaleTraces) {
  // The SMC workload patches its own loop body mid-run. With guards on,
  // the traces formed over the pre-patch text must go stale, be
  // invalidated, and the run must stay bit-identical to the interpretive
  // oracle under both guard policies.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_smc_c62x();
  const LoadedProgram p = target.assemble(w.asm_source);

  InterpSimulator oracle(*target.model);
  oracle.load(p);
  const RunResult want = oracle.run(2'000'000);
  ASSERT_TRUE(want.halted);

  for (const GuardPolicy policy :
       {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    SCOPED_TRACE(guard_policy_name(policy));
    CompiledSimulator sim(*target.model, SimLevel::kTrace);
    sim.set_trace_config(eager_config());
    sim.set_guard_policy(policy);
    sim.load(p);
    EXPECT_EQ(sim.run(2'000'000), want);
    EXPECT_TRUE(oracle.state() == sim.state());
    for (const auto& [address, value] : w.expected_dmem)
      EXPECT_EQ(reg_of(*target.model, sim.state(), "dmem", address), value);

    const TraceStats* stats = sim.trace_stats();
    ASSERT_NE(stats, nullptr);
    EXPECT_GE(stats->formed, 1u);
    EXPECT_GE(stats->invalidated, 1u)
        << "patching traced text must invalidate the covering trace";
  }
}

TEST(Trace, UnguardedSmcDivergesLikeStatic) {
  // Without guards the trace tier replays the stale static translation —
  // deliberately: the divergence is the hazard the guards exist to close,
  // and the unguarded trace level must at least diverge *identically* to
  // the unguarded static level.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_smc_c62x();
  const LoadedProgram p = target.assemble(w.asm_source);

  CompiledSimulator stale(*target.model, SimLevel::kCompiledStatic);
  stale.load(p);
  const RunResult want = stale.run(2'000'000);

  CompiledSimulator sim(*target.model, SimLevel::kTrace);
  sim.set_trace_config(eager_config());
  sim.load(p);
  EXPECT_EQ(sim.run(2'000'000), want);
  EXPECT_TRUE(stale.state() == sim.state());
}

// ------------------------------------------------ checkpoint interaction

TEST(Trace, CheckpointRoundTripAtTraceBoundaries) {
  // run() only returns (and save_checkpoint() only runs) between engine
  // cycles, which a whole-trace dispatch never straddles — so checkpoints
  // taken mid-run always land on a trace boundary and replay exactly.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_smc_c62x();
  const LoadedProgram p = target.assemble(w.asm_source);

  CompiledSimulator sim(*target.model, SimLevel::kTrace);
  sim.set_trace_config(eager_config());
  sim.set_guard_policy(GuardPolicy::kRecompile);
  sim.load(p);
  ASSERT_FALSE(sim.run(40).halted);
  const EngineCheckpoint cp = sim.save_checkpoint();
  const RunResult tail = sim.run(2'000'000);
  ASSERT_TRUE(tail.halted);
  const std::string final_state = sim.state().dump_nonzero();

  // Replay in place: restore conservatively re-stales every guarded word,
  // so surviving traces are invalidated lazily — the result must not move.
  sim.restore_checkpoint(cp);
  EXPECT_EQ(sim.run(2'000'000), tail);
  EXPECT_EQ(sim.state().dump_nonzero(), final_state);

  // And into a fresh simulator instance of the same model/level/program.
  CompiledSimulator fresh(*target.model, SimLevel::kTrace);
  fresh.set_trace_config(eager_config());
  fresh.set_guard_policy(GuardPolicy::kRecompile);
  fresh.load(p);
  fresh.restore_checkpoint(cp);
  EXPECT_EQ(fresh.run(2'000'000), tail);
  EXPECT_TRUE(fresh.state() == sim.state());
}

// ------------------------------------------------ watchdog parity

TEST(Trace, WatchdogTripsAtTheSameCycleAsStatic) {
  // fits_budget() must keep whole-trace dispatch from overshooting a
  // watchdog: the recoverable stop has to fire at the exact cycle the
  // per-packet levels report, pc and all.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(R"(
        MVK 1, B0
loop:   [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
  )");
  RunLimits limits;
  limits.watchdog_cycles = 500;

  SimErrorContext want;
  {
    CompiledSimulator sim(*target.model, SimLevel::kCompiledStatic);
    sim.load(p);
    try {
      sim.run(limits);
      FAIL() << "static watchdog must fire";
    } catch (const SimError& e) {
      EXPECT_TRUE(e.recoverable());
      want = e.context();
    }
  }
  CompiledSimulator sim(*target.model, SimLevel::kTrace);
  sim.set_trace_config(eager_config());
  sim.load(p);
  try {
    sim.run(limits);
    FAIL() << "trace watchdog must fire";
  } catch (const SimError& e) {
    EXPECT_TRUE(e.recoverable());
    EXPECT_EQ(e.context().cycle, want.cycle);
    EXPECT_EQ(e.context().pc, want.pc);
  }
  const TraceStats* stats = sim.trace_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->entries, 0u) << "the spin loop must run in traces";
}

TEST(Trace, StuckLimitTripsAtTheSameCycleAsStatic) {
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(R"(
        NOP 12
        HALT
  )");
  RunLimits limits;
  limits.max_stuck_cycles = 5;

  SimErrorContext want;
  {
    CompiledSimulator sim(*target.model, SimLevel::kCompiledStatic);
    sim.load(p);
    try {
      sim.run(limits);
      FAIL() << "static stuck limit must fire";
    } catch (const SimError& e) {
      EXPECT_TRUE(e.recoverable());
      want = e.context();
    }
  }
  CompiledSimulator sim(*target.model, SimLevel::kTrace);
  sim.set_trace_config(eager_config());
  sim.load(p);
  try {
    sim.run(limits);
    FAIL() << "trace stuck limit must fire";
  } catch (const SimError& e) {
    EXPECT_TRUE(e.recoverable());
    EXPECT_EQ(e.context().cycle, want.cycle);
    EXPECT_EQ(e.context().pc, want.pc);
  }
}

// ------------------------------------------------ cache snapshot adoption

TEST(Trace, CacheSnapshotIsAdoptedByALaterSimulator) {
  // Traces formed during a run are published to the SimTableCache on the
  // next load (keyed next to the table signature); a second simulator on
  // the same cache adopts them pre-warmed and replays without re-forming.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(kLoopAsm);
  SimTableCache cache;

  CompiledSimulator first(*target.model, SimLevel::kTrace);
  first.set_trace_config(eager_config());
  first.set_table_cache(&cache);
  first.load(p);
  const RunResult want = first.run(2'000'000);
  ASSERT_TRUE(want.halted);
  ASSERT_NE(first.trace_stats(), nullptr);
  ASSERT_GE(first.trace_stats()->formed, 1u);
  const std::string want_state = first.state().dump_nonzero();
  first.load(p);  // publishes the trace set alongside the cached table

  CompiledSimulator second(*target.model, SimLevel::kTrace);
  second.set_trace_config(eager_config());
  second.set_table_cache(&cache);
  second.load(p);
  const TraceStats* stats = second.trace_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->adopted, 1u) << "snapshot must be adopted at load";
  EXPECT_EQ(second.run(2'000'000), want);
  EXPECT_EQ(second.state().dump_nonzero(), want_state);
  EXPECT_EQ(stats->formed, 0u)
      << "adopted traces dispatch without re-forming";
  EXPECT_GT(stats->entries, 0u);

  // Dropping the program from the cache drops the trace stash with it.
  cache.invalidate(SimTableCache::hash_program(p));
  CompiledSimulator third(*target.model, SimLevel::kTrace);
  third.set_trace_config(eager_config());
  third.set_table_cache(&cache);
  third.load(p);
  ASSERT_NE(third.trace_stats(), nullptr);
  EXPECT_EQ(third.trace_stats()->adopted, 0u);
  EXPECT_EQ(third.run(2'000'000), want);
}

// ------------------------------------------------ compile-stats satellite

TEST(CompileStats, DecodeCachedCountsLazyLowering) {
  // The decode-cached level defers sequencing + lowering to first issue;
  // load() alone must report zero lazily lowered packets, and after a run
  // compile_stats() must account for every packet the run touched.
  TestTarget target(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = target.assemble(kLoopAsm);

  CachedInterpSimulator sim(*target.model);
  const SimCompileStats at_load = sim.load(p);
  EXPECT_GT(at_load.instructions, 0u);
  EXPECT_GT(at_load.table_rows, 0u);
  EXPECT_EQ(at_load.lazy_lowered_packets, 0u)
      << "nothing is lowered before execution";
  EXPECT_EQ(at_load.microops, 0u);

  ASSERT_TRUE(sim.run(2'000'000).halted);
  const SimCompileStats after = sim.compile_stats();
  EXPECT_GT(after.lazy_lowered_packets, 0u)
      << "the run must have instantiated packets";
  EXPECT_LE(after.lazy_lowered_packets, after.table_rows);
  EXPECT_GT(after.microops, 0u);

  // Re-running does not re-lower: the counters are cumulative per cache.
  sim.reload(p);
  ASSERT_TRUE(sim.run(2'000'000).halted);
  EXPECT_EQ(sim.compile_stats().lazy_lowered_packets,
            after.lazy_lowered_packets);

  // Ahead-of-time levels never report lazy lowering.
  CompiledSimulator aot(*target.model, SimLevel::kCompiledStatic);
  const SimCompileStats aot_stats = aot.load(p);
  EXPECT_EQ(aot_stats.lazy_lowered_packets, 0u);
  EXPECT_GT(aot_stats.microops, 0u);
}

// ------------------------------------------------ peephole seam guarantees

// The trace builder splices per-packet micro-op spans into one program and
// re-runs optimize_microops across the former packet boundaries. Two
// properties keep that fusion sound, pinned here on hand-built programs of
// the exact shape the splicer emits.

TEST(TraceSplice, ConstLatticeResetsAtSideExitLabel) {
  // A side-exit label inside a spliced superblock is a branch target: a
  // constant definition that only one incoming path establishes must not
  // be propagated past the label. t2 is 10 on the taken path and 20 on
  // the fall-through; folding the write after the label to either value
  // would corrupt the other path.
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const Resource* regs = target.model->resource_by_name("R");
  ASSERT_NE(regs, nullptr);

  MicroProgram mp;
  mp.num_temps = 4;
  mp.ops.push_back(mo_const(1, 0));                      // idx 0
  mp.ops.push_back(mo_read_elem(0, regs->id, 1));
  mp.ops.push_back(mo_const(3, 1));                      // idx 1
  mp.ops.push_back(mo_const(2, 10));
  mp.ops.push_back(mo_brzero(0, 6));                     // side exit
  mp.ops.push_back(mo_const(2, 20));
  // op 6 — the side-exit label (join): R[1] = t2.
  mp.ops.push_back(mo_write_elem(regs->id, 3, 2));
  validate_microops(mp);

  for (const std::int64_t cond : {0, 1}) {
    MicroProgram opt = mp;
    optimize_microops(opt);
    ProcessorState state(*target.model);
    PipelineControl control;
    std::vector<std::int64_t> temps;
    state.write(regs->id, 0, cond);
    run_microops(opt, state, control, temps);
    EXPECT_EQ(state.read(regs->id, 1), cond == 0 ? 10 : 20)
        << "cond=" << cond << "\n" << microops_to_string(opt);
  }
}

TEST(TraceSplice, DivisionByZeroIsNotFoldedAcrossAPacketSeam) {
  // Splicing makes both operands of a later packet's division visible as
  // constants from an earlier packet. The peephole must still keep the
  // op: folding would silently drop the run-time SimError the per-packet
  // levels raise.
  for (const BinOp op : {BinOp::kDiv, BinOp::kRem}) {
    MicroProgram mp;
    mp.num_temps = 3;
    // ---- packet A's span: the constants ----
    mp.ops.push_back(mo_const(0, 1));
    mp.ops.push_back(mo_const(1, 0));
    // ---- packet B's span (temps renamed by the splicer) ----
    mp.ops.push_back(mo_bin(op, 2, 0, 1));
    optimize_microops(mp);
    ASSERT_FALSE(mp.empty());

    TestTarget target(targets::tinydsp_model_source(), "tinydsp");
    ProcessorState state(*target.model);
    PipelineControl control;
    std::vector<std::int64_t> temps;
    EXPECT_THROW(run_microops(mp, state, control, temps), SimError)
        << microops_to_string(mp);
  }
}

}  // namespace
}  // namespace lisasim
