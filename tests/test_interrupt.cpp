// External control-hazard (interrupt/exception) injection tests: the
// engine squashes all in-flight packets at the scheduled cycle and
// redirects fetch to the handler — identically at every simulation level.
#include <gtest/gtest.h>

#include "sim/cached_interp.hpp"
#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}

// Main loop spins forever; the handler at `irq` stores a marker and halts.
const char* kProgram = R"(
        MVK 1, R1
loop:   ADD.L R2, R2, R1    ; counts loop iterations
        B loop
        NOP 1
irq:    MVK 123, R5
        HALT
)";

struct LevelResult {
  RunResult run;
  std::string dump;
};

template <typename Sim>
LevelResult run_with_irq(Sim& sim, const LoadedProgram& p,
                         std::uint64_t cycle, std::uint64_t target) {
  sim.load(p);
  sim.schedule_interrupt(cycle, target);
  LevelResult r;
  r.run = sim.run(100000);
  r.dump = sim.state().dump_nonzero();
  return r;
}

TEST(Interrupt, RedirectsToHandlerAndHalts) {
  const LoadedProgram p = tiny().assemble(kProgram);
  const std::uint64_t irq = p.symbols.at("irq");
  InterpSimulator sim(*tiny().model);
  const LevelResult r = run_with_irq(sim, p, 50, irq);
  EXPECT_TRUE(r.run.halted);
  EXPECT_NE(r.dump.find("R[5] = 123"), std::string::npos) << r.dump;
  // The loop ran for a while before the interrupt.
  EXPECT_NE(r.dump.find("R[2] ="), std::string::npos);
}

TEST(Interrupt, IdenticalAcrossLevels) {
  const LoadedProgram p = tiny().assemble(kProgram);
  const std::uint64_t irq = p.symbols.at("irq");
  InterpSimulator a(*tiny().model);
  CachedInterpSimulator b(*tiny().model);
  CompiledSimulator c(*tiny().model, SimLevel::kCompiledDynamic);
  CompiledSimulator d(*tiny().model, SimLevel::kCompiledStatic);
  const LevelResult ra = run_with_irq(a, p, 37, irq);
  const LevelResult rb = run_with_irq(b, p, 37, irq);
  const LevelResult rc = run_with_irq(c, p, 37, irq);
  const LevelResult rd = run_with_irq(d, p, 37, irq);
  EXPECT_EQ(ra.run, rb.run);
  EXPECT_EQ(ra.run, rc.run);
  EXPECT_EQ(ra.run, rd.run);
  EXPECT_EQ(ra.dump, rb.dump);
  EXPECT_EQ(ra.dump, rc.dump);
  EXPECT_EQ(ra.dump, rd.dump);
}

TEST(Interrupt, EarlierCycleInterruptsEarlier) {
  const LoadedProgram p = tiny().assemble(kProgram);
  const std::uint64_t irq = p.symbols.at("irq");
  InterpSimulator early(*tiny().model);
  InterpSimulator late(*tiny().model);
  const LevelResult re = run_with_irq(early, p, 20, irq);
  const LevelResult rl = run_with_irq(late, p, 80, irq);
  EXPECT_LT(re.run.cycles, rl.run.cycles);
  // Both end in the handler.
  EXPECT_NE(re.dump.find("R[5] = 123"), std::string::npos);
  EXPECT_NE(rl.dump.find("R[5] = 123"), std::string::npos);
}

TEST(Interrupt, MultipleInterruptsDeliverInOrder) {
  // First interrupt sends control to a secondary loop; the second one
  // reaches the final handler.
  const LoadedProgram p = tiny().assemble(R"(
        MVK 1, R1
loop1:  B loop1
        NOP 1
mid:    MVK 7, R6
loop2:  B loop2
        NOP 1
irq:    MVK 9, R7
        HALT
  )");
  InterpSimulator sim(*tiny().model);
  sim.load(p);
  sim.schedule_interrupt(20, p.symbols.at("mid"));
  sim.schedule_interrupt(40, p.symbols.at("irq"));
  const RunResult r = sim.run(100000);
  EXPECT_TRUE(r.halted);
  const std::string dump = sim.state().dump_nonzero();
  EXPECT_NE(dump.find("R[6] = 7"), std::string::npos) << dump;
  EXPECT_NE(dump.find("R[7] = 9"), std::string::npos);
}

TEST(Interrupt, PastCycleDeliversImmediately) {
  const LoadedProgram p = tiny().assemble(kProgram);
  InterpSimulator sim(*tiny().model);
  sim.load(p);
  sim.run(30);  // consume 30 cycles first
  sim.schedule_interrupt(10, p.symbols.at("irq"));  // already in the past
  const RunResult r = sim.run(1000);
  EXPECT_TRUE(r.halted);
  EXPECT_LT(r.cycles, 20u);  // delivered on the first cycle of this run
}

TEST(Interrupt, ResetClearsSimulationTime) {
  const LoadedProgram p = tiny().assemble(kProgram);
  InterpSimulator sim(*tiny().model);
  const LevelResult r1 = run_with_irq(sim, p, 25, p.symbols.at("irq"));
  // Reloading restarts simulation time, so the same schedule reproduces
  // the same run.
  const LevelResult r2 = run_with_irq(sim, p, 25, p.symbols.at("irq"));
  EXPECT_EQ(r1.run, r2.run);
  EXPECT_EQ(r1.dump, r2.dump);
}

}  // namespace
}  // namespace lisasim
