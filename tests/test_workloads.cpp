// Workload validation: each benchmark program must produce exactly the
// values of its C reference model, at every simulation level — this is the
// strongest form of the paper's accuracy claim, checked end to end through
// assembler, decoder, specializer and both engines.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "targets/c62x.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    target_ = new TestTarget(targets::c62x_model_source(), "c62x");
  }
  static void TearDownTestSuite() {
    delete target_;
    target_ = nullptr;
  }

  void check_against_reference(const workloads::Workload& w,
                               std::uint64_t max_cycles = 50'000'000) {
    SCOPED_TRACE(w.name);
    const LoadedProgram p = target_->assemble(w.asm_source);

    // All three levels agree with each other...
    const auto run = testing::run_all_levels(*target_->model, p, max_cycles);
    EXPECT_TRUE(run.result.halted) << w.name << " did not halt";

    // ...and with the C reference model.
    InterpSimulator sim(*target_->model);
    sim.load(p);
    sim.run(max_cycles);
    const Resource* dmem = target_->model->resource_by_name("dmem");
    ASSERT_NE(dmem, nullptr);
    for (const auto& [addr, value] : w.expected_dmem) {
      EXPECT_EQ(sim.state().read(dmem->id, addr), value)
          << w.name << " dmem[" << addr << "]";
    }
  }

  static TestTarget* target_;
};

TestTarget* WorkloadTest::target_ = nullptr;

TEST_F(WorkloadTest, FirSmall) { check_against_reference(workloads::make_fir(4, 8)); }

TEST_F(WorkloadTest, FirMedium) {
  check_against_reference(workloads::make_fir(16, 32));
}

TEST_F(WorkloadTest, FirSingleTap) {
  check_against_reference(workloads::make_fir(1, 16));
}

TEST_F(WorkloadTest, AdpcmShort) {
  check_against_reference(workloads::make_adpcm(32));
}

TEST_F(WorkloadTest, AdpcmMedium) {
  check_against_reference(workloads::make_adpcm(200));
}

TEST_F(WorkloadTest, GsmSmallFrame) {
  check_against_reference(workloads::make_gsm(32));
}

TEST_F(WorkloadTest, GsmFullFrame) {
  check_against_reference(workloads::make_gsm(160));
}

TEST_F(WorkloadTest, RepeatKnobGrowsTextSizeOnly) {
  const auto w1 = workloads::make_fir(4, 8, 1);
  const auto w3 = workloads::make_fir(4, 8, 3);
  const LoadedProgram p1 = target_->assemble(w1.asm_source);
  const LoadedProgram p3 = target_->assemble(w3.asm_source);
  EXPECT_GT(p3.words.size(), 2 * p1.words.size());
  // Same results (the repeats recompute the same outputs).
  check_against_reference(w3);
}


TEST_F(WorkloadTest, AdpcmRoundTripReconstructs) {
  const auto w = workloads::make_adpcm_roundtrip(96);
  check_against_reference(w);
  // The reconstructed PCM must track the input: the quantizer converges,
  // so late samples are close (within a few steps of the adaptive
  // quantizer). Spot-check that decode output is not degenerate.
  std::size_t nonzero = 0;
  for (const auto& [addr, value] : w.expected_dmem)
    if (addr >= 8192 && value != 0) ++nonzero;
  EXPECT_GT(nonzero, 40u);
}

TEST_F(WorkloadTest, PaperSuiteIsThreeApplications) {
  const auto suite = workloads::paper_suite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "fir");
  EXPECT_EQ(suite[1].name, "adpcm");
  EXPECT_EQ(suite[2].name, "gsm");
}

}  // namespace
}  // namespace lisasim
