// Behavior-IR unit tests: construction helpers, deep cloning, printing,
// intrinsic metadata, and property sweeps over the shared fold helpers
// (the single source of arithmetic truth for all execution paths).
#include <gtest/gtest.h>

#include "behavior/fold.hpp"
#include "behavior/ir.hpp"

namespace lisasim {
namespace {

TEST(Ir, MakeHelpersBuildExpectedShapes) {
  auto e = Expr::make_binary(BinOp::kAdd, Expr::make_int(1),
                             Expr::make_sym("x"));
  EXPECT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->children[0]->value, 1);
  EXPECT_EQ(e->children[1]->sym.name, "x");
  EXPECT_EQ(e->to_string(), "(1 + x)");

  auto u = Expr::make_unary(UnOp::kBitNot, Expr::make_int(0));
  EXPECT_EQ(u->to_string(), "~(0)");
}

TEST(Ir, CloneIsDeep) {
  auto original = Expr::make_binary(BinOp::kMul, Expr::make_sym("a"),
                                    Expr::make_int(7));
  auto copy = original->clone();
  copy->children[0]->sym.name = "b";
  copy->children[1]->value = 9;
  EXPECT_EQ(original->to_string(), "(a * 7)");
  EXPECT_EQ(copy->to_string(), "(b * 9)");
}

TEST(Ir, StmtCloneIsDeep) {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kIf;
  stmt->value = Expr::make_sym("c");
  auto inner = std::make_unique<Stmt>();
  inner->kind = StmtKind::kAssign;
  inner->lhs = Expr::make_sym("x");
  inner->value = Expr::make_int(3);
  stmt->then_body.push_back(std::move(inner));

  auto copy = stmt->clone();
  copy->then_body[0]->value->value = 99;
  EXPECT_NE(stmt->to_string(), copy->to_string());
  EXPECT_NE(stmt->to_string().find("x = 3;"), std::string::npos);
  EXPECT_NE(copy->to_string().find("x = 99;"), std::string::npos);
}

TEST(Ir, IntrinsicMetadataIsConsistent) {
  for (Intrinsic i :
       {Intrinsic::kSext, Intrinsic::kZext, Intrinsic::kSat, Intrinsic::kAbs,
        Intrinsic::kMin, Intrinsic::kMax, Intrinsic::kFlush,
        Intrinsic::kStall, Intrinsic::kHalt}) {
    EXPECT_EQ(intrinsic_by_name(intrinsic_name(i)), i);
    EXPECT_GE(intrinsic_arity(i), 0);
    EXPECT_LE(intrinsic_arity(i), 2);
  }
  EXPECT_EQ(intrinsic_by_name("nope"), Intrinsic::kNone);
}

TEST(Ir, SpellingsRoundTripThroughPrinter) {
  // Every binary operator prints with its surface spelling.
  EXPECT_STREQ(bin_op_spelling(BinOp::kShl), "<<");
  EXPECT_STREQ(bin_op_spelling(BinOp::kLogicalAnd), "&&");
  EXPECT_STREQ(un_op_spelling(UnOp::kLogicalNot), "!");
}

// ---- fold property sweeps ------------------------------------------------

struct FoldCase {
  std::int64_t a;
  std::int64_t b;
};

class FoldSweep : public ::testing::TestWithParam<FoldCase> {};

TEST_P(FoldSweep, MatchesWideArithmetic) {
  const auto [a, b] = GetParam();
  // Addition/subtraction/multiplication wrap exactly like unsigned 64-bit.
  EXPECT_EQ(*fold_binary(BinOp::kAdd, a, b),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                      static_cast<std::uint64_t>(b)));
  EXPECT_EQ(*fold_binary(BinOp::kSub, a, b),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                      static_cast<std::uint64_t>(b)));
  EXPECT_EQ(*fold_binary(BinOp::kMul, a, b),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                      static_cast<std::uint64_t>(b)));
  // Comparisons agree with C semantics.
  EXPECT_EQ(*fold_binary(BinOp::kLt, a, b), a < b ? 1 : 0);
  EXPECT_EQ(*fold_binary(BinOp::kGe, a, b), a >= b ? 1 : 0);
  EXPECT_EQ(*fold_binary(BinOp::kEq, a, b), a == b ? 1 : 0);
  // Bit operations.
  EXPECT_EQ(*fold_binary(BinOp::kAnd, a, b), a & b);
  EXPECT_EQ(*fold_binary(BinOp::kXor, a, b), a ^ b);
  // Division: nullopt exactly on zero divisors.
  const auto div = fold_binary(BinOp::kDiv, a, b);
  EXPECT_EQ(div.has_value(), b != 0);
  if (b != 0 && b != -1) EXPECT_EQ(*div, a / b);
  if (b == -1)
    EXPECT_EQ(*div, static_cast<std::int64_t>(-static_cast<std::uint64_t>(a)));
  // Shifts mask the amount.
  EXPECT_EQ(*fold_binary(BinOp::kShl, a, b),
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                      << (static_cast<std::uint64_t>(b) & 63)));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FoldSweep,
    ::testing::Values(FoldCase{0, 0}, FoldCase{1, 2}, FoldCase{-1, 1},
                      FoldCase{INT64_MAX, 1}, FoldCase{INT64_MIN, -1},
                      FoldCase{INT64_MIN, 1}, FoldCase{123456789, -987654321},
                      FoldCase{-5, 3}, FoldCase{5, -3}, FoldCase{7, 0},
                      FoldCase{1, 63}, FoldCase{1, 64}, FoldCase{1, 127},
                      FoldCase{-64, 3}));

TEST(Fold, UnaryOperators) {
  EXPECT_EQ(fold_unary(UnOp::kNeg, 5), -5);
  EXPECT_EQ(fold_unary(UnOp::kNeg, INT64_MIN), INT64_MIN);  // wraps
  EXPECT_EQ(fold_unary(UnOp::kLogicalNot, 0), 1);
  EXPECT_EQ(fold_unary(UnOp::kLogicalNot, -3), 0);
  EXPECT_EQ(fold_unary(UnOp::kBitNot, 0), -1);
}

TEST(Fold, SaturationBoundaries) {
  EXPECT_EQ(fold_saturate(32768, 16), 32767);
  EXPECT_EQ(fold_saturate(-32769, 16), -32768);
  EXPECT_EQ(fold_saturate(32767, 16), 32767);
  EXPECT_EQ(fold_saturate(-32768, 16), -32768);
  EXPECT_EQ(fold_saturate(INT64_MAX, 40), (INT64_C(1) << 39) - 1);
  EXPECT_EQ(fold_saturate(INT64_MIN, 40), -(INT64_C(1) << 39));
  EXPECT_EQ(fold_saturate(12345, 64), 12345);
}

TEST(Fold, PureIntrinsics) {
  const std::int64_t args1[] = {static_cast<std::int64_t>(0xF0), 8};
  EXPECT_EQ(*fold_intrinsic(Intrinsic::kSext, args1), -16);
  const std::int64_t args2[] = {-1, 4};
  EXPECT_EQ(*fold_intrinsic(Intrinsic::kZext, args2), 15);
  const std::int64_t args3[] = {-7};
  EXPECT_EQ(*fold_intrinsic(Intrinsic::kAbs,
                            std::span<const std::int64_t>(args3, 1)),
            7);
  const std::int64_t args4[] = {3, -4};
  EXPECT_EQ(*fold_intrinsic(Intrinsic::kMin, args4), -4);
  EXPECT_EQ(*fold_intrinsic(Intrinsic::kMax, args4), 3);
}

TEST(Fold, ControlIntrinsicsDoNotFold) {
  const std::int64_t none[] = {0, 0};
  EXPECT_FALSE(fold_intrinsic(Intrinsic::kFlush, none).has_value());
  EXPECT_FALSE(fold_intrinsic(Intrinsic::kStall, none).has_value());
  EXPECT_FALSE(fold_intrinsic(Intrinsic::kHalt, none).has_value());
}

TEST(Fold, LogicalOperatorsNormalize) {
  EXPECT_EQ(*fold_binary(BinOp::kLogicalAnd, 5, 9), 1);
  EXPECT_EQ(*fold_binary(BinOp::kLogicalAnd, 5, 0), 0);
  EXPECT_EQ(*fold_binary(BinOp::kLogicalOr, 0, 0), 0);
  EXPECT_EQ(*fold_binary(BinOp::kLogicalOr, 0, -2), 1);
}

}  // namespace
}  // namespace lisasim
