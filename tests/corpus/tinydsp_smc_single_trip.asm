; target: tinydsp
; guard: recompile
; minimized from the smc workload: one ADD trip, patch the loop body with
; the SUB template through program memory, one SUB trip. The smallest
; program where the compiled tiers are unsound without write guards.
        .entry start
start:  MVK 0, R0
        MVK 3, R2
        MVK 100, R6
        MVK 1, R5
        MVK 1, R9
        MVK 1, R4
loop:   BZ R4, phase
patch:  ADD.L R6, R6, R2
        SUB.L R4, R4, R5
        B loop
phase:  BZ R9, done
        MVK 0, R9
        LDP R7, R0, tmpl
        STP R7, R0, patch
        MVK 1, R4
        B loop
done:   ST R6, R0, 32
        HALT
tmpl:   SUB.L R6, R6, R2
