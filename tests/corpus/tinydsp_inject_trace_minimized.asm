; target: tinydsp
; guard: recompile
; found-by: lisasim-fuzz @tinydsp --inject-divergence 3 (trace level, recompile guard)
; the injected trace-state corruption minimizes to a bare fall-through
; HALT; kept as the smallest possible all-levels replay.
L0:
L1:
L2:
L3:
L4:
L5:
L6:
L7:
L8:
L9:
L10:
L11:
L12:
L13:
L14:
L15:
L16:
L17:
L18:
L19:
L20:
L21:
L22: HALT
L23:
