; target: tinydsp
; minimized 3-instruction repro shape: an untaken BZ whose target is its
; own packet, immediately followed by HALT — pins branch-predicate
; evaluation against the fall-off-the-end exit in every tier.
        MVK 1, R1
loop:   BZ R1, loop
        HALT
