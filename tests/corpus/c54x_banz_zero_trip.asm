; target: c54x
; minimized repro shape: BANZ with AR1 already zero — the loop body must
; run exactly once and the decrement must not wrap the auxiliary register.
        LDI 0, A
        LDAR AR1, 0
loop:   ADD @0, A
        BANZ loop, AR1
        ST A, @1
        HALT
        .data dmem 0
        .word 7
