; target: c62x
; minimized repro shape: a load consumer scheduled exactly at the NOP 3
; load-delay boundary, then a multiply whose result is stored back — the
; tightest legal LDW/MPY/STW chain.
        .entry start
start:  MVK 5, A8
        LDW A8, 0, A12
        NOP 3
        MPY A12, A12, A14
        STW A14, A8, 2
        HALT
        .data dmem 0
        .word 0, 0, 0, 0, 0, 9
