; target: c54x
; guard: recompile
; provenance: root cause of the PR-7 "no SMC workload for c54x" skip in
; test_differential. The c54x machine description has no store recipe
; that reaches program memory, so self-modifying code is inexpressible
; on this target (fuzz::ProgramGenerator::supports_smc() == false); the
; differential SMC test now gates on that capability probe instead of
; the target name. This entry pins the nearest expressible shape: a
; data-memory store inside the hot loop body with write guards armed.
; It must never trip a recompile, and all five levels must agree on
; timing and final state.
        LDI 0, A
        LDAR AR1, 3
loop:   ADD @0, A
        ST A, @1          ; store in the loop body, guards armed
        BANZ loop, AR1
        HALT
        .data dmem 0
        .word 5
