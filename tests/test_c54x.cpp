// End-to-end tests on the c54x accumulator-DSP model: MAC/accumulator
// semantics, 40-bit saturation, AR-indirect addressing, the BANZ loop
// primitive, branch penalty — and cross-level accuracy throughout.
#include <gtest/gtest.h>

#include "asm/disasm.hpp"
#include "sim_test_util.hpp"
#include "targets/c54x.hpp"

namespace lisasim {
namespace {

using testing::CrossLevelRun;
using testing::TestTarget;

class C54xTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    target_ = new TestTarget(targets::c54x_model_source(), "c54x");
  }
  static void TearDownTestSuite() {
    delete target_;
    target_ = nullptr;
  }
  static TestTarget* target_;
};

TestTarget* C54xTest::target_ = nullptr;

TEST_F(C54xTest, AssembleDisassembleRoundTrip) {
  const char* sources[] = {
      "LD @5, A",     "LD @5, B",     "ST A, @9",    "ADD @3, A",
      "SUB @3, B",    "MAC @7, A",    "LDT @4",      "LDI -12, A",
      "SFTL A, 5",    "LD *AR3, A",   "MAC *AR2, B", "ST B, *AR7",
      "B 100",        "BANZ 3, AR1",  "LDAR AR4, 200", "MAR AR4, -3",
      "NOP",          "HALT",
  };
  for (const char* src : sources) {
    const LoadedProgram p = target_->assemble(std::string(src) + "\nHALT\n");
    const std::string dis = disassemble_word(*target_->decoder, p.words[0]);
    const LoadedProgram p2 = target_->assemble(dis + "\nHALT\n");
    EXPECT_EQ(p.words[0], p2.words[0]) << src << " -> " << dis;
  }
}

TEST_F(C54xTest, SixteenBitWords) {
  const LoadedProgram p = target_->assemble("HALT\n");
  EXPECT_LT(p.words[0], 1u << 16);
  EXPECT_EQ(target_->model->pipeline.depth(), 6);
}

TEST_F(C54xTest, AccumulatorLoadStore) {
  const LoadedProgram p = target_->assemble(R"(
        LD @10, A
        ST A, @11
        LDI -7, B
        ST B, @12
        HALT
        .data dmem 10
        .word 1234
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("dmem[11] = 1234"), std::string::npos)
      << run.state_dump;
  EXPECT_NE(run.state_dump.find("dmem[12] = -7"), std::string::npos);
}

TEST_F(C54xTest, MacAccumulates) {
  // A = 3*10 + 4*20 + 5*30 = 260 via T-register MACs.
  const LoadedProgram p = target_->assemble(R"(
        LDI 0, A
        LDT @0
        MAC @3, A
        LDT @1
        MAC @4, A
        LDT @2
        MAC @5, A
        ST A, @20
        HALT
        .data dmem 0
        .word 3, 4, 5, 10, 20, 30
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("dmem[20] = 260"), std::string::npos)
      << run.state_dump;
}

TEST_F(C54xTest, FortyBitSaturation) {
  // Shift 1 up to bit 38, double it twice: saturates at 2^39 - 1.
  const LoadedProgram p = target_->assemble(R"(
        LDI 1, A
        SFTL A, 31
        SFTL A, 8           ; 2^39 wraps to -2^39 under sext(.,40)
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  // 1 << 39 = 2^39; sext(...,40) makes it negative: -549755813888.
  EXPECT_NE(run.state_dump.find("ACCA = -549755813888"), std::string::npos)
      << run.state_dump;

  const LoadedProgram sat = target_->assemble(R"(
        LDI 1, A
        SFTL A, 31
        SFTL A, 7           ; A = 2^38
        ADD @0, A           ; A += dmem[0] (0): no change, but saturated add
        ADD @1, A           ; A += 32767 repeatedly cannot exceed 2^39-1
        ADD @1, A
        HALT
        .data dmem 0
        .word 0, 32767
  )");
  const CrossLevelRun run2 = testing::run_all_levels(*target_->model, sat);
  // 2^38 + 2*32767 is far from saturation; just check exactness.
  EXPECT_NE(run2.state_dump.find("ACCA = 274877972478"), std::string::npos)
      << run2.state_dump;
}

TEST_F(C54xTest, IndirectAddressingWalksArray) {
  const LoadedProgram p = target_->assemble(R"(
        LDAR AR1, 50
        LDI 0, A
        ADD @50, A          ; direct
        LD *AR1, B          ; indirect through AR1
        MAR AR1, 1
        LD *AR1, A          ; next element
        HALT
        .data dmem 50
        .word 111, 222
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("ACCB = 111"), std::string::npos)
      << run.state_dump;
  EXPECT_NE(run.state_dump.find("ACCA = 222"), std::string::npos);
}

TEST_F(C54xTest, BanzLoopComputesDotProduct) {
  // Dot product of two 4-element vectors with the classic BANZ loop:
  // AR1 walks x, AR2 walks y... using T/MAC: T <- x[i] via LDT indirect?
  // LDT is direct-only, so walk with MAC *ARn and reload T per element.
  const LoadedProgram p = target_->assemble(R"(
        LDAR AR1, 3          ; loop count - 1
        LDAR AR2, 100        ; x pointer
        LDAR AR3, 200        ; y pointer... T loads must be direct; instead
        LDI 0, A
loop:   LD *AR2, B           ; B = x[i]
        ST B, @300           ; scratch
        LDT @300             ; T = x[i]
        MAC *AR3, A          ; A += T * y[i]
        MAR AR2, 1
        MAR AR3, 1
        BANZ loop, AR1
        ST A, @301
        HALT
        .data dmem 100
        .word 1, 2, 3, 4
        .data dmem 200
        .word 10, 20, 30, 40
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_TRUE(run.result.halted);
  // 1*10 + 2*20 + 3*30 + 4*40 = 300
  EXPECT_NE(run.state_dump.find("dmem[301] = 300"), std::string::npos)
      << run.state_dump;
}

TEST_F(C54xTest, BranchPenaltyIsThreeCycles) {
  const LoadedProgram straight = target_->assemble("NOP\nHALT\n");
  const LoadedProgram branched = target_->assemble(R"(
        B over
        NOP
over:   HALT
  )");
  const auto r1 = testing::run_all_levels(*target_->model, straight);
  const auto r2 = testing::run_all_levels(*target_->model, branched);
  // The branch replaces the NOP (same slot count) and adds a 3-cycle
  // squash bubble (resolution in stage A, index 3).
  EXPECT_EQ(r2.result.cycles - r1.result.cycles, 3u);
}

TEST_F(C54xTest, BranchSquashesWrongPath) {
  const LoadedProgram p = target_->assemble(R"(
        B over
        LDI 1, A            ; squashed
        LDI 2, B            ; squashed
over:   LDI 3, A
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("ACCA = 3"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("ACCB"), std::string::npos);
}

TEST_F(C54xTest, MemoryIsSixteenBitSignExtending) {
  const LoadedProgram p = target_->assemble(R"(
        LDI -1, A
        SFTL A, 4           ; A = -16
        ST A, @0            ; stores 0xFFF0
        LD @0, B            ; sign-extends back to -16
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("ACCB = -16"), std::string::npos)
      << run.state_dump;
}

}  // namespace
}  // namespace lisasim
