// Randomized cross-level equivalence ("fuzz") tests: generate random but
// well-formed programs for both target models and assert that the
// interpretive, compiled-dynamic and compiled-static simulators agree on
// every cycle count and every architectural result. This is the paper's
// accuracy claim applied to program space, not just the three benchmarks.
#include <gtest/gtest.h>

#include <string>

#include "sim_test_util.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 2654435761u + 12345u) {}
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                             hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------- tinydsp

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}

/// Random tinydsp program. Safety rules: R1 is only ever set by MVK with a
/// small non-negative value, so LD/ST through R1 stay in bounds; branches
/// only jump forward to emitted labels.
std::string random_tinydsp_program(std::uint64_t seed, int length) {
  Rng rng(seed);
  std::string out;
  out += "MVK " + std::to_string(rng.range(0, 1000)) + ", R1\n";
  int pending_label = -1;
  for (int i = 0; i < length; ++i) {
    if (pending_label == i) {
      out += "lbl" + std::to_string(i) + ":\n";
      pending_label = -1;
    }
    const int reg = [&] {
      int r = rng.range(0, 7);
      return r == 1 ? 2 : r;  // never overwrite the base register
    }();
    switch (rng.range(0, 9)) {
      case 0:
      case 1:
        out += "MVK " + std::to_string(rng.range(-30000, 30000)) + ", R" +
               std::to_string(reg) + "\n";
        break;
      case 2:
        out += "ADD." + std::string(rng.range(0, 1) ? "S" : "L") + " R" +
               std::to_string(reg) + ", R" + std::to_string(rng.range(0, 7)) +
               ", R" + std::to_string(rng.range(0, 7)) + "\n";
        break;
      case 3:
        out += "SUB." + std::string(rng.range(0, 1) ? "S" : "L") + " R" +
               std::to_string(reg) + ", R" + std::to_string(rng.range(0, 7)) +
               ", R" + std::to_string(rng.range(0, 7)) + "\n";
        break;
      case 4:
        out += "MUL." + std::string(rng.range(0, 1) ? "S" : "L") + " R" +
               std::to_string(reg) + ", R" + std::to_string(rng.range(0, 7)) +
               ", R" + std::to_string(rng.range(0, 7)) + "\n";
        break;
      case 5:
        out += "LD R" + std::to_string(reg) + ", R1, " +
               std::to_string(rng.range(0, 31)) + "\n";
        break;
      case 6:
        out += "ST R" + std::to_string(rng.range(0, 7)) + ", R1, " +
               std::to_string(rng.range(0, 31)) + "\n";
        break;
      case 7:
        out += "NOP " + std::to_string(rng.range(1, 4)) + "\n";
        break;
      case 8:
        // Forward branch over the next couple of instructions.
        if (pending_label < 0 && i + 2 < length) {
          pending_label = i + 2;
          out += "B lbl" + std::to_string(pending_label) + "\n";
        } else {
          out += "NOP 1\n";
        }
        break;
      case 9:
        if (pending_label < 0 && i + 2 < length) {
          pending_label = i + 2;
          out += "BZ R" + std::to_string(rng.range(0, 7)) + ", lbl" +
                 std::to_string(pending_label) + "\n";
        } else {
          out += "NOP 1\n";
        }
        break;
    }
  }
  if (pending_label >= 0) out += "lbl" + std::to_string(pending_label) + ":\n";
  out += "HALT\n";
  return out;
}

class TinyDspFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TinyDspFuzz, AllLevelsAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const std::string source =
      random_tinydsp_program(seed, 20 + static_cast<int>(seed % 40));
  SCOPED_TRACE(source);
  const LoadedProgram p = tiny().assemble(source);
  const auto run = testing::run_all_levels(*tiny().model, p, 1'000'000);
  EXPECT_TRUE(run.result.halted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyDspFuzz, ::testing::Range(1, 33));

// ------------------------------------------------------------------ c62x

TestTarget& c62x() {
  static TestTarget t(targets::c62x_model_source(), "c62x");
  return t;
}

/// Random c62x program with random predication and execute packets.
/// Safety rules: A0 stays zero (load/store base), at most one load, one
/// store and one multiply per packet, no branches (covered by unit tests).
std::string random_c62x_program(std::uint64_t seed, int length) {
  Rng rng(seed);
  std::string out;
  const char* preds[] = {"",       "",      "",       "[B0] ", "[!B0] ",
                         "[B1] ",  "[!B1] ", "[A1] ",  "[!A1] ", "[B2] "};
  bool packet_has_mpy = false, packet_has_ld = false, packet_has_st = false;
  bool in_packet = false;
  int packet_size = 0;
  const auto reg = [&](bool allow_a0) {
    for (;;) {
      const int r = rng.range(0, 31);
      if (!allow_a0 && r == 0) continue;
      return std::string(r < 16 ? "A" : "B") + std::to_string(r % 16);
    }
  };
  for (int i = 0; i < length; ++i) {
    const bool parallel =
        in_packet && packet_size < 8 && rng.range(0, 3) == 0;
    if (!parallel) {
      packet_has_mpy = packet_has_ld = packet_has_st = false;
      packet_size = 0;
    }
    ++packet_size;
    std::string line = parallel ? " || " : "";
    line += preds[rng.range(0, 9)];
    switch (rng.range(0, 9)) {
      case 0:
        line += "MVK " + std::to_string(rng.range(-32768, 32767)) + ", " +
                reg(false);
        break;
      case 1:
        line += "ADD " + reg(true) + ", " + reg(true) + ", " + reg(false);
        break;
      case 2:
        line += "SUB " + reg(true) + ", " + reg(true) + ", " + reg(false);
        break;
      case 3:
        line += "SADD " + reg(true) + ", " + reg(true) + ", " + reg(false);
        break;
      case 4:
        line += "AND " + reg(true) + ", " + reg(true) + ", " + reg(false);
        break;
      case 5:
        line += "CMPGT " + reg(true) + ", " + reg(true) + ", " + reg(false);
        break;
      case 6:
        if (!packet_has_mpy) {
          packet_has_mpy = true;
          line += "MPY " + reg(true) + ", " + reg(true) + ", " + reg(false);
        } else {
          line += "MV " + reg(true) + ", " + reg(false);
        }
        break;
      case 7:
        if (!packet_has_ld) {
          packet_has_ld = true;
          line += "LDW A0, " + std::to_string(rng.range(0, 63)) + ", " +
                  reg(false);
        } else {
          line += "ABS " + reg(true) + ", " + reg(false);
        }
        break;
      case 8:
        if (!packet_has_st) {
          packet_has_st = true;
          line += "STW " + reg(true) + ", A0, " +
                  std::to_string(rng.range(0, 63));
        } else {
          line += "SHRI " + reg(true) + ", " +
                  std::to_string(rng.range(0, 31)) + ", " + reg(false);
        }
        break;
      case 9:
        line += "SHLI " + reg(true) + ", " + std::to_string(rng.range(0, 31)) +
                ", " + reg(false);
        break;
    }
    out += line + "\n";
    in_packet = true;
  }
  out += "NOP 5\nHALT\n";
  return out;
}

class C62xFuzz : public ::testing::TestWithParam<int> {};

TEST_P(C62xFuzz, AllLevelsAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const std::string source =
      random_c62x_program(seed ^ 0xC62Cu, 16 + static_cast<int>(seed % 48));
  SCOPED_TRACE(source);
  const LoadedProgram p = c62x().assemble(source);
  const auto run = testing::run_all_levels(*c62x().model, p, 1'000'000);
  EXPECT_TRUE(run.result.halted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, C62xFuzz, ::testing::Range(1, 33));

}  // namespace
}  // namespace lisasim
