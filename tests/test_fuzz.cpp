// Randomized cross-level equivalence ("fuzz") tests: random programs for
// all three target models, generated from each model's own SYNTAX/CODING
// tables by fuzz::ProgramGenerator, must run identically on all five
// simulation levels (interpretive, decode-cached, compiled-dynamic,
// compiled-static, hot-trace) — cycle counts, retirement counters and
// final architectural state. This is the paper's accuracy claim applied
// to program space, not just the benchmark suite; self-patching programs
// additionally run under both guard policies.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/progen.hpp"
#include "sim_test_util.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

constexpr std::uint64_t kMaxCycles = 30000;

/// Generate seed's program (skipping to the next sub-seed when a program
/// is fatal on the interpretive oracle — e.g. a chaos-weighted operand
/// escaping its bound) and assert five-level agreement. SMC programs run
/// under both guard policies; plain programs also run fully unguarded.
void run_generated_seed(TestTarget& target, std::uint64_t seed) {
  fuzz::ProgramGenerator gen(*target.model);
  for (int attempt = 0; attempt < 16; ++attempt) {
    const fuzz::GeneratedProgram prog =
        gen.generate(seed + 0x9E3779B97F4A7C15ull *
                                static_cast<std::uint64_t>(attempt));
    SCOPED_TRACE(prog.source);
    LoadedProgram p;
    ASSERT_NO_THROW(p = target.assemble(prog.source));

    InterpSimulator oracle(*target.model);
    oracle.load(p);
    try {
      oracle.run(kMaxCycles);
    } catch (const SimError& e) {
      if (!e.recoverable()) continue;  // rejected: try the next sub-seed
    }

    if (prog.has_smc) {
      // Unguarded table-based levels legitimately diverge on SMC.
      testing::run_all_levels(*target.model, p, kMaxCycles,
                              GuardPolicy::kRecompile);
      testing::run_all_levels(*target.model, p, kMaxCycles,
                              GuardPolicy::kFallback);
    } else {
      testing::run_all_levels(*target.model, p, kMaxCycles);
      testing::run_all_levels(*target.model, p, kMaxCycles,
                              GuardPolicy::kRecompile);
    }
    return;
  }
  FAIL() << "no accepted program in 16 attempts for seed " << seed;
}

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}
TestTarget& c54x() {
  static TestTarget t(targets::c54x_model_source(), "c54x");
  return t;
}
TestTarget& c62x() {
  static TestTarget t(targets::c62x_model_source(), "c62x");
  return t;
}

class TinyDspFuzz : public ::testing::TestWithParam<int> {};
TEST_P(TinyDspFuzz, AllLevelsAgree) {
  run_generated_seed(tiny(), static_cast<std::uint64_t>(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Seeds, TinyDspFuzz, ::testing::Range(1, 33));

class C54xFuzz : public ::testing::TestWithParam<int> {};
TEST_P(C54xFuzz, AllLevelsAgree) {
  run_generated_seed(c54x(), static_cast<std::uint64_t>(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Seeds, C54xFuzz, ::testing::Range(1, 33));

class C62xFuzz : public ::testing::TestWithParam<int> {};
TEST_P(C62xFuzz, AllLevelsAgree) {
  run_generated_seed(c62x(), static_cast<std::uint64_t>(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Seeds, C62xFuzz, ::testing::Range(1, 33));

}  // namespace
}  // namespace lisasim
