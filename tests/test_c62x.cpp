// End-to-end tests on the c62x model: VLIW execute packets, predication,
// exposed pipeline latencies (MPY/load/branch delay slots), saturating
// arithmetic, and cross-level accuracy.
#include <gtest/gtest.h>

#include "asm/disasm.hpp"
#include "sim_test_util.hpp"
#include "targets/c62x.hpp"

namespace lisasim {
namespace {

using testing::CrossLevelRun;
using testing::TestTarget;

class C62xTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    target_ = new TestTarget(targets::c62x_model_source(), "c62x");
  }
  static void TearDownTestSuite() {
    delete target_;
    target_ = nullptr;
  }
  static TestTarget* target_;
};

TestTarget* C62xTest::target_ = nullptr;

TEST_F(C62xTest, AssembleDisassembleRoundTrip) {
  const char* sources[] = {
      "ADD A1, A2, A3",       "SUB B1, B2, B3",      "MPY A1, B2, A3",
      "MPYH A4, A5, A6",      "SMPY B1, B2, B3",     "AND A1, A2, A3",
      "OR A1, A2, A3",        "XOR A1, A2, A3",      "SHL A1, A2, A3",
      "SHR A1, A2, A3",       "CMPEQ A1, A2, A3",    "CMPGT A1, B2, B3",
      "CMPLT A1, A2, A3",     "SADD A1, A2, A3",     "SSUB A1, A2, A3",
      "MIN2 A1, A2, A3",      "MAX2 A1, A2, A3",     "MV A1, B1",
      "ABS A1, A2",           "MVK 1000, A1",        "MVKH 513, A1",
      "ADDK 77, B5",          "SHLI A1, 5, A2",      "SHRI B1, 3, B2",
      "LDW A1, 16, A2",       "LDH B1, 2, B2",       "STW A1, A2, 3",
      "STH B1, B2, 1",        "B 100",               "NOP 5",
      "HALT",                 "[B0] ADD A1, A2, A3", "[!B0] MVK 5, A1",
      "[A1] B 7",             "[!A2] STW A1, A2, 0",
  };
  for (const char* src : sources) {
    const LoadedProgram p = target_->assemble(std::string(src) + "\nHALT\n");
    const std::string dis = disassemble_word(*target_->decoder, p.words[0]);
    const LoadedProgram p2 = target_->assemble(dis + "\nHALT\n");
    EXPECT_EQ(p.words[0], p2.words[0]) << src << " -> " << dis;
  }
}

TEST_F(C62xTest, ParallelBarsSetTheChainBit) {
  const LoadedProgram p = target_->assemble(R"(
        ADD A1, A2, A3
     || SUB B1, B2, B3
     || MVK 7, A4
        HALT
  )");
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.words[0] & 1u, 1u);  // chained to next
  EXPECT_EQ(p.words[1] & 1u, 1u);
  EXPECT_EQ(p.words[2] & 1u, 0u);  // last of packet
  EXPECT_EQ(p.words[3] & 1u, 0u);
}

TEST_F(C62xTest, PacketTooLargeFails) {
  std::string src = "ADD A1, A2, A3\n";
  for (int i = 0; i < 8; ++i) src += " || ADD A1, A2, A3\n";
  DiagnosticEngine diags;
  Assembler assembler(*target_->model, *target_->decoder);
  assembler.assemble(src, "t.asm", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST_F(C62xTest, ParallelPacketExecutesInOneCycle) {
  const LoadedProgram sequential = target_->assemble(R"(
        MVK 1, A1
        MVK 2, A2
        MVK 3, A3
        MVK 4, A4
        HALT
  )");
  const LoadedProgram parallel = target_->assemble(R"(
        MVK 1, A1
     || MVK 2, A2
     || MVK 3, A3
     || MVK 4, A4
        HALT
  )");
  const auto r_seq = testing::run_all_levels(*target_->model, sequential);
  const auto r_par = testing::run_all_levels(*target_->model, parallel);
  EXPECT_EQ(r_seq.result.cycles - r_par.result.cycles, 3u);
  // Same architectural result (the program words differ by p-bits, so
  // compare registers, not the whole dump).
  for (int i = 1; i <= 4; ++i) {
    EXPECT_NE(r_seq.state_dump.find("A[" + std::to_string(i) + "] = " +
                                    std::to_string(i)),
              std::string::npos);
    EXPECT_NE(r_par.state_dump.find("A[" + std::to_string(i) + "] = " +
                                    std::to_string(i)),
              std::string::npos);
  }
}

TEST_F(C62xTest, PredicationControlsExecution) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 0, B0
        MVK 1, B1
        [B0] MVK 11, A3       ; B0 == 0: squashed
        [B1] MVK 12, A4       ; B1 != 0: executes
        [!B0] MVK 13, A5      ; executes
        [!B1] MVK 14, A6      ; squashed
        [A1] MVK 15, A7       ; A1 == 0: squashed
        [!A2] MVK 16, A8      ; A2 == 0: executes
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_EQ(run.state_dump.find("A[3]"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[4] = 12"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[5] = 13"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("A[6]"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("A[7]"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[8] = 16"), std::string::npos);
}

TEST_F(C62xTest, MpyWritesBackInE2) {
  // MPY's E2 writeback runs in the same cycle as the next packet's E1 but
  // *before* it (oldest first), so the next instruction already sees the
  // product; only a same-packet reader sees the old value.
  const LoadedProgram p = target_->assemble(R"(
        MVK 6, A1
        MVK 7, A2
        MPY A1, A2, A3        ; A3 <- 42 in E2
        MV A3, A4             ; next packet: sees 42
        MV A3, A6             ; sees 42
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = 42"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[4] = 42"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[6] = 42"), std::string::npos)
      << run.state_dump;
}

TEST_F(C62xTest, MpyResultNotVisibleInSamePacket) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 6, A1
        MVK 7, A2
        MPY A1, A2, A3
     || MV A3, A4             ; same packet: must read old A3 (= 0)
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = 42"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("A[4]"), std::string::npos)
      << run.state_dump;  // A4 stayed 0
}

TEST_F(C62xTest, LoadDelaySlots) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 3, A1             ; base
        LDW A1, 2, A5         ; A5 <- dmem[5] = 999
        MV A5, A6             ; too early: old A5
        NOP 2
        MV A5, A7             ; E5 writeback has drained: sees 999
        HALT
        .data dmem 5
        .word 999
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[5] = 999"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("A[6]"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[7] = 999"), std::string::npos);
}

TEST_F(C62xTest, PredicatedFalseLoadDoesNotWrite) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 0, B0
        MVK 77, A5
        [B0] LDW A1, 0, A5    ; squashed: A5 keeps 77
        NOP 5
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[5] = 77"), std::string::npos);
}

TEST_F(C62xTest, StoreCompletesInE3) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 55, A1
        MVK 9, A2
        STW A1, A2, 0         ; dmem[9] <- 55 (in E3)
        NOP 4
        LDW A2, 0, A3         ; A3 <- dmem[9]
        NOP 4
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = 55"), std::string::npos)
      << run.state_dump;
}

TEST_F(C62xTest, HalfwordLoadStoreSignExtend) {
  const LoadedProgram p = target_->assemble(R"(
        MVK -2, A1            ; 0xFFFFFFFE
        MVK 4, A2
        STH A1, A2, 0         ; dmem[4] low half <- 0xFFFE
        NOP 4
        LDH A2, 0, A3         ; A3 <- sext(0xFFFE) = -2
        LDW A2, 0, A4         ; A4 <- raw word (0x0000FFFE = 65534)
        NOP 4
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = -2"), std::string::npos)
      << run.state_dump;
  EXPECT_NE(run.state_dump.find("A[4] = 65534"), std::string::npos);
}

TEST_F(C62xTest, BranchHasFiveDelaySlots) {
  const LoadedProgram p = target_->assemble(R"(
        B target
        MVK 1, A3             ; delay slot 1: executes
        MVK 2, A4             ; delay slot 2: executes
        MVK 3, A5             ; delay slot 3: executes
        MVK 4, A6             ; delay slot 4: executes
        MVK 5, A7             ; delay slot 5: executes
        MVK 6, A8             ; never fetched
        MVK 7, A9             ; never fetched
target: HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = 1"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[7] = 5"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("A[8]"), std::string::npos)
      << run.state_dump;
  EXPECT_EQ(run.state_dump.find("A[9]"), std::string::npos);
}

TEST_F(C62xTest, CountedLoopSums) {
  // Classic C6x down-counted loop: the body fills the branch's 5 delay
  // slots (5 words — a multi-cycle NOP would shorten the fetch window, so
  // single NOPs pad); HALT is fetched only when the branch falls through.
  const LoadedProgram p = target_->assemble(R"(
        MVK 5, B0             ; trip count
        MVK 0, A3             ; sum
        MVK 1, A4             ; constant one
loop:   [B0] B loop
        ADD A3, B0, A3        ; sum += counter (delay slot 1)
        SUB B0, A4, B0        ; counter-- (delay slot 2)
        NOP 1
        NOP 1
        NOP 1                 ; delay slots 3..5
        HALT                  ; reached when B0 == 0
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_TRUE(run.result.halted);
  // sum = 5+4+3+2+1 = 15
  EXPECT_NE(run.state_dump.find("A[3] = 15"), std::string::npos)
      << run.state_dump;
}

TEST_F(C62xTest, SaturatingArithmetic) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 1, A1
        MVKH 32768, A1        ; A1 = 0x80000001 -> INT32_MIN + 1
        MVK -10, A2
        SADD A1, A2, A3       ; saturates to INT32_MIN
        MVK -1, B1
        MVKH 32767, B1        ; B1 = 0x7FFFFFFF = INT32_MAX
        MVK 10, B2
        SADD B1, B2, B3       ; saturates to INT32_MAX
        SSUB A1, B1, A4       ; min+1 - max saturates to INT32_MIN
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = -2147483648"), std::string::npos)
      << run.state_dump;
  EXPECT_NE(run.state_dump.find("B[3] = 2147483647"), std::string::npos);
  EXPECT_NE(run.state_dump.find("A[4] = -2147483648"), std::string::npos);
}

TEST_F(C62xTest, SmpyDoublesAndSaturates) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 16384, A1
        MVK 16384, A2
        SMPY A1, A2, A3       ; (16384*16384)<<1 = 2^29... fits
        MVK -32768, B1
        MVK -32768, B2
        SMPY B1, B2, B3       ; (0x8000*0x8000)<<1 = 2^31 -> saturates
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = 536870912"), std::string::npos)
      << run.state_dump;
  EXPECT_NE(run.state_dump.find("B[3] = 2147483647"), std::string::npos);
}

TEST_F(C62xTest, MpyhUsesHighHalves) {
  const LoadedProgram p = target_->assemble(R"(
        MVK 0, A1
        MVKH 5, A1            ; A1 = 5 << 16
        MVK 0, A2
        MVKH 7, A2            ; A2 = 7 << 16
        MPYH A1, A2, A3       ; 5 * 7
        HALT
  )");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_NE(run.state_dump.find("A[3] = 35"), std::string::npos)
      << run.state_dump;
}

TEST_F(C62xTest, ElevenStagePipelineFillTime) {
  // A lone HALT is fetched at the end of cycle 1 and travels PG..E1
  // (stages 0..6), executing halt() in cycle 8.
  const LoadedProgram p = target_->assemble("HALT\n");
  const CrossLevelRun run = testing::run_all_levels(*target_->model, p);
  EXPECT_EQ(run.result.cycles, 8u);
}

}  // namespace
}  // namespace lisasim
