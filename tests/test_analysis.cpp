// ResourceUsage (structural-hazard analysis) unit tests.
#include <gtest/gtest.h>

#include "decode/analysis.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"
#include "targets/c62x.hpp"

namespace lisasim {
namespace {

struct Harness {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;
  std::unique_ptr<ResourceUsage> usage;

  explicit Harness(std::string_view source) {
    model = compile_model_source_or_throw(source, "analysis-test");
    decoder = std::make_unique<Decoder>(*model);
    usage = std::make_unique<ResourceUsage>(*model);
  }
};

TEST(ResourceUsage, CollectsDirectAndActivatedWrites) {
  Harness h(R"(
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      REGISTER int32 R[4];
      MEMORY uint32 m[16];
      int32 s1; int32 s2;
      PIPELINE pipe = { A; B; C; };
    }
    FETCH { WORD 8; MEMORY m; }
    OPERATION late IN pipe.C {
      BEHAVIOR { s2 = s1; }
    }
    OPERATION instruction IN pipe.A {
      DECLARE { LABEL f; }
      CODING { f=0bx[8] }
      BEHAVIOR { s1 = f; R[0] = f; }
      ACTIVATION { late }
    }
  )");
  DecodedNodePtr node = h.decoder->decode(0x12);
  ASSERT_NE(node, nullptr);
  const auto writes = h.usage->writes_of(*node);
  // s1 written in stage A (0); s2 written in stage C (2) via activation.
  // R is an array: not tracked.
  const ResourceId s1 = h.model->resource_by_name("s1")->id;
  const ResourceId s2 = h.model->resource_by_name("s2")->id;
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_TRUE((writes[0] == ScalarWrite{s1, 0} &&
               writes[1] == ScalarWrite{s2, 2}) ||
              (writes[0] == ScalarWrite{s2, 2} &&
               writes[1] == ScalarWrite{s1, 0}));
}

TEST(ResourceUsage, ConservativeOverConditionalBranches) {
  Harness h(R"(
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      MEMORY uint32 m[16];
      int32 a; int32 b;
      PIPELINE pipe = { X; };
    }
    FETCH { WORD 8; MEMORY m; }
    OPERATION instruction IN pipe.X {
      DECLARE { LABEL f; }
      CODING { f=0bx[8] }
      IF (f == 0) {
        BEHAVIOR { a = 1; }
      } ELSE {
        BEHAVIOR { if (b > 0) { b = 0; } }
      }
    }
  )");
  DecodedNodePtr node = h.decoder->decode(0x01);
  const auto writes = h.usage->writes_of(*node);
  // Both branches' writes counted, including inside run-time ifs.
  EXPECT_EQ(writes.size(), 2u);
}

TEST(ResourceUsage, C62xMultiplyConflictsWithItself) {
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  ResourceUsage usage(*model);
  const std::uint32_t mpy =
      (0b000011u << 22) | (3u << 17) | (1u << 12) | (2u << 7);
  const std::uint32_t add =
      (0b000001u << 22) | (3u << 17) | (1u << 12) | (2u << 7);
  DecodedNodePtr a = decoder.decode(mpy);
  DecodedNodePtr b = decoder.decode(mpy | (5u << 17));
  DecodedNodePtr c = decoder.decode(add);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  // Two MPYs share mpy_g1/mpy_v1.
  EXPECT_GE(usage.first_conflict(*a, *b), 0);
  EXPECT_EQ(model->resource(usage.first_conflict(*a, *b)).name, "mpy_g1");
  // MPY vs ADD: no shared scalars.
  EXPECT_EQ(usage.first_conflict(*a, *c), -1);
}

TEST(ResourceUsage, ArrayWritesAreNotStructuralHazards) {
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  ResourceUsage usage(*model);
  // Two ADDs writing the same register file (even the same register) are
  // not flagged: register-file write ports are not modelled as scalars.
  const std::uint32_t add =
      (0b000001u << 22) | (3u << 17) | (1u << 12) | (2u << 7);
  DecodedNodePtr a = decoder.decode(add);
  DecodedNodePtr b = decoder.decode(add);
  EXPECT_EQ(usage.first_conflict(*a, *b), -1);
}

}  // namespace
}  // namespace lisasim
