// Guarded execution: self-modifying-code detection and recovery, watchdog
// limits, checkpoint/restore, and the memory-hook machinery they build on.
//
// The load-bearing property is the same as the differential harness's: with
// guards enabled, every compiled level must stay bit-identical to the
// interpretive oracle even when the program rewrites its own text — and
// without guards, the compiled levels must demonstrably diverge (that
// divergence is the hazard the guards exist to close, paper §3).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim_test_util.hpp"
#include "sim/checkpoint.hpp"
#include "sim/guard.hpp"
#include "sim/table_cache.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;
using testing::reg_of;

constexpr SimLevel kAllLevels[] = {
    SimLevel::kInterpretive, SimLevel::kDecodeCached,
    SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic};
constexpr SimLevel kTableLevels[] = {SimLevel::kDecodeCached,
                                     SimLevel::kCompiledDynamic,
                                     SimLevel::kCompiledStatic};
constexpr GuardPolicy kPolicies[] = {GuardPolicy::kRecompile,
                                     GuardPolicy::kFallback};

/// Construct the simulator for `level`, apply the guard policy, load, and
/// hand it to `fn` (a generic lambda taking `auto& sim`).
template <typename Fn>
decltype(auto) with_sim(const Model& model, SimLevel level,
                        GuardPolicy policy, const LoadedProgram& program,
                        Fn&& fn) {
  if (level == SimLevel::kInterpretive) {
    InterpSimulator sim(model);
    sim.load(program);
    return fn(sim);
  }
  if (level == SimLevel::kDecodeCached) {
    CachedInterpSimulator sim(model);
    sim.set_guard_policy(policy);
    sim.load(program);
    return fn(sim);
  }
  CompiledSimulator sim(model, level);
  sim.set_guard_policy(policy);
  sim.load(program);
  return fn(sim);
}

// ---------------------------------------------------------------- hooks

struct RecordingHook final : MemoryHook {
  std::vector<std::pair<std::uint64_t, std::int64_t>> writes;
  std::int64_t read_bias = 0;

  std::int64_t on_read(std::uint64_t /*index*/, std::int64_t stored) override {
    return stored + read_bias;
  }
  void on_write(std::uint64_t index, std::int64_t value) override {
    writes.emplace_back(index, value);
  }
};

class MemoryHookTest : public ::testing::Test {
 protected:
  MemoryHookTest()
      : target_(targets::tinydsp_model_source(), "tinydsp"),
        state_(*target_.model),
        dmem_(target_.model->resource_by_name("dmem")->id),
        pmem_(target_.model->resource_by_name("pmem")->id) {}

  TestTarget target_;
  ProcessorState state_;
  ResourceId dmem_;
  ResourceId pmem_;
};

TEST_F(MemoryHookTest, OverlappingRegionsResolveToFirstRegistered) {
  RecordingHook first, second;
  first.read_bias = 100;
  second.read_bias = 200;
  state_.map_hook(dmem_, 0, 10, &first);
  state_.map_hook(dmem_, 5, 15, &second);

  state_.write(dmem_, 7, 42);  // inside both regions
  ASSERT_EQ(first.writes.size(), 1u);
  EXPECT_EQ(first.writes[0], std::make_pair(std::uint64_t{7},
                                            std::int64_t{42}));
  EXPECT_TRUE(second.writes.empty());
  EXPECT_EQ(state_.read(dmem_, 7), 42 + 100);

  state_.write(dmem_, 12, 7);  // only the second region covers it
  ASSERT_EQ(second.writes.size(), 1u);
  EXPECT_EQ(second.writes[0], std::make_pair(std::uint64_t{12},
                                             std::int64_t{7}));
  EXPECT_EQ(state_.read(dmem_, 12), 7 + 200);
}

TEST_F(MemoryHookTest, HookOverProgramMemoryObservesTextWrites) {
  RecordingHook hook;
  state_.map_hook(pmem_, 0, state_.size_of(pmem_), &hook);
  state_.write(pmem_, 3, 0x12345678);
  ASSERT_EQ(hook.writes.size(), 1u);
  EXPECT_EQ(hook.writes[0].first, 3u);
  EXPECT_EQ(hook.writes[0].second, 0x12345678);
  // Loading a program writes its text through the hook too.
  const LoadedProgram p = target_.assemble("        HALT\n");
  load_into_state(p, state_);
  EXPECT_GT(hook.writes.size(), 1u);
}

TEST_F(MemoryHookTest, ResetPreservesHookRegistrations) {
  RecordingHook hook;
  state_.map_hook(dmem_, 0, 8, &hook);
  state_.write(dmem_, 2, 5);
  ASSERT_EQ(state_.hook_count(), 1u);

  state_.reset();
  EXPECT_EQ(state_.hook_count(), 1u) << "reset clears values, not hooks";
  EXPECT_EQ(state_.read(dmem_, 2), 0 + 0) << "values are cleared";
  state_.write(dmem_, 2, 9);
  ASSERT_EQ(hook.writes.size(), 2u) << "hook still fires after reset";
  EXPECT_EQ(hook.writes[1], std::make_pair(std::uint64_t{2},
                                           std::int64_t{9}));
}

TEST_F(MemoryHookTest, UnmapHookRemovesEveryRegionOfTheHook) {
  RecordingHook hook, other;
  state_.map_hook(dmem_, 0, 4, &hook);
  state_.map_hook(dmem_, 8, 12, &hook);  // two regions, one hook
  state_.map_hook(pmem_, 0, 4, &other);
  EXPECT_EQ(state_.hook_count(), 3u);

  state_.unmap_hook(&hook);
  EXPECT_EQ(state_.hook_count(), 1u);
  state_.write(dmem_, 1, 3);
  state_.write(dmem_, 9, 3);
  EXPECT_TRUE(hook.writes.empty());
  state_.write(pmem_, 1, 3);
  EXPECT_EQ(other.writes.size(), 1u) << "other hooks stay mapped";
  state_.unmap_hook(&hook);  // unknown hook: no-op
  EXPECT_EQ(state_.hook_count(), 1u);
}

TEST_F(MemoryHookTest, ProgramGuardGenerationsTrackWrites) {
  ProgramGuard guard;
  guard.attach(state_);
  EXPECT_TRUE(guard.attached());
  EXPECT_EQ(guard.writes(), 0u);
  EXPECT_TRUE(guard.span_clean(0, 16));

  state_.write(pmem_, 5, 0xABCD);
  EXPECT_EQ(guard.writes(), 1u);
  EXPECT_FALSE(guard.span_clean(4, 4));
  EXPECT_TRUE(guard.span_clean(0, 5));
  EXPECT_TRUE(guard.span_clean(6, 16));
  const std::uint64_t stamp = guard.span_stamp(4, 4);
  EXPECT_EQ(stamp, 1u);
  state_.write(pmem_, 5, 0xABCD);  // same value still bumps the generation
  EXPECT_EQ(guard.span_stamp(4, 4), stamp + 1);

  guard.reset();  // re-baseline (what load() does after writing the text)
  EXPECT_EQ(guard.writes(), 0u);
  EXPECT_TRUE(guard.span_clean(4, 4));

  guard.bump_all();  // conservative re-stale (checkpoint restore)
  EXPECT_GT(guard.writes(), 0u);
  EXPECT_FALSE(guard.span_clean(0, 1));
  // Out-of-range words were never translated from, so they stay clean.
  const std::uint64_t size = state_.size_of(pmem_);
  EXPECT_TRUE(guard.span_clean(size + 10, 4));
  EXPECT_EQ(guard.span_stamp(size + 10, 4), 0u);

  guard.detach();
  EXPECT_FALSE(guard.attached());
  EXPECT_EQ(state_.hook_count(), 0u);
}

// ---------------------------------------------- self-modifying-code runs

struct SmcCase {
  const char* target_name;
  std::string_view (*source)();
  workloads::Workload (*make)(int, int);
};

const SmcCase kSmcCases[] = {
    {"tinydsp", targets::tinydsp_model_source, workloads::make_smc_tinydsp},
    {"c62x", targets::c62x_model_source, workloads::make_smc_c62x},
};

TEST(GuardedSmc, GuardedLevelsMatchTheInterpretiveOracle) {
  for (const SmcCase& smc : kSmcCases) {
    SCOPED_TRACE(smc.target_name);
    TestTarget target(smc.source(), smc.target_name);
    const workloads::Workload w = smc.make(5, 7);
    const LoadedProgram p = target.assemble(w.asm_source);

    InterpSimulator oracle(*target.model);
    oracle.load(p);
    const RunResult want = oracle.run(100000);
    ASSERT_TRUE(want.halted);
    for (const auto& [addr, value] : w.expected_dmem)
      EXPECT_EQ(reg_of(*target.model, oracle.state(), "dmem", addr), value);

    for (const SimLevel level : kTableLevels) {
      for (const GuardPolicy policy : kPolicies) {
        SCOPED_TRACE(std::string(sim_level_name(level)) + " / " +
                     guard_policy_name(policy));
        with_sim(*target.model, level, policy, p, [&](auto& sim) {
          EXPECT_EQ(sim.run(100000), want);
          EXPECT_TRUE(oracle.state() == sim.state());
          EXPECT_GT(sim.guarded_writes(), 0u);
          const GuardStats& gs = sim.guard_stats();
          EXPECT_GT(gs.stale_issues, 0u);
          if (policy == GuardPolicy::kRecompile) {
            EXPECT_GT(gs.recompiles, 0u);
            EXPECT_EQ(gs.fallbacks, 0u);
          } else {
            EXPECT_GT(gs.fallbacks, 0u);
            EXPECT_EQ(gs.recompiles, 0u);
          }
        });
      }
    }
  }
}

TEST(GuardedSmc, UnguardedCompiledLevelsExecuteStaleTranslations) {
  // The divergence the guards close: without them every table-based level
  // keeps running the pre-patch ADD, overshooting the accumulator by
  // 3 * (phase1 + phase2) relative to the oracle's 100 + 3*5 - 3*7.
  for (const SmcCase& smc : kSmcCases) {
    SCOPED_TRACE(smc.target_name);
    TestTarget target(smc.source(), smc.target_name);
    const workloads::Workload w = smc.make(5, 7);
    const LoadedProgram p = target.assemble(w.asm_source);
    for (const SimLevel level : kTableLevels) {
      SCOPED_TRACE(sim_level_name(level));
      with_sim(*target.model, level, GuardPolicy::kOff, p, [&](auto& sim) {
        const RunResult r = sim.run(100000);
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(reg_of(*target.model, sim.state(), "dmem", 32),
                  100 + 3 * 5 + 3 * 7);
        EXPECT_EQ(sim.guarded_writes(), 0u) << "guard is detached when off";
      });
    }
  }
}

// ------------------------------------------------------- watchdog limits

constexpr const char* kSpinAsm = R"(
        .entry start
start:  MVK 1, R1
loop:   B loop
        HALT
)";

TEST(Watchdog, CycleLimitThrowsRecoverableAtEveryLevel) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const LoadedProgram p = target.assemble(kSpinAsm);
  for (const SimLevel level : kAllLevels) {
    SCOPED_TRACE(sim_level_name(level));
    with_sim(*target.model, level, GuardPolicy::kOff, p, [&](auto& sim) {
      RunLimits limits;
      limits.watchdog_cycles = 200;
      try {
        sim.run(limits);
        FAIL() << "watchdog must throw";
      } catch (const SimError& e) {
        EXPECT_TRUE(e.recoverable());
        EXPECT_EQ(e.kind(), SimErrorKind::kRecoverable);
        EXPECT_TRUE(e.context().has_cycle);
        EXPECT_EQ(e.context().cycle, 200u);
        EXPECT_TRUE(e.context().has_pc);
        EXPECT_EQ(e.context().level, static_cast<int>(level));
        EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
      }
    });
  }
}

TEST(Watchdog, StuckLimitCatchesNonRetiringPipeline) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  // NOP 15 stalls the pipeline for 14 cycles: no packet retires while the
  // stall drains, which is exactly the livelock signature.
  const LoadedProgram p = target.assemble(R"(
        .entry start
start:  NOP 15
        HALT
)");
  for (const SimLevel level : kAllLevels) {
    SCOPED_TRACE(sim_level_name(level));
    with_sim(*target.model, level, GuardPolicy::kOff, p, [&](auto& sim) {
      RunLimits limits;
      limits.max_stuck_cycles = 5;
      try {
        sim.run(limits);
        FAIL() << "stuck limit must throw";
      } catch (const SimError& e) {
        EXPECT_TRUE(e.recoverable());
        EXPECT_NE(std::string(e.what()).find("without a retiring"),
                  std::string::npos);
      }
      // Without the limit the same pipeline state simply finishes.
      EXPECT_TRUE(sim.run(1000).halted);
    });
  }
}

TEST(Watchdog, MaxCyclesIsASoftStopNotAnError) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const LoadedProgram p = target.assemble(kSpinAsm);
  for (const SimLevel level : kAllLevels) {
    SCOPED_TRACE(sim_level_name(level));
    with_sim(*target.model, level, GuardPolicy::kOff, p, [&](auto& sim) {
      const RunResult r = sim.run(300);
      EXPECT_EQ(r.cycles, 300u);
      EXPECT_FALSE(r.halted);
    });
  }
}

TEST(Watchdog, RunResumesAfterARecoverableStop) {
  // The watchdog fires at a clean cycle boundary, so catching it and
  // calling run() again must finish the program with the same total cycle
  // count and final state as an uninterrupted run — at every level, on the
  // self-modifying workload.
  for (const SmcCase& smc : kSmcCases) {
    SCOPED_TRACE(smc.target_name);
    TestTarget target(smc.source(), smc.target_name);
    const workloads::Workload w = smc.make(5, 7);
    const LoadedProgram p = target.assemble(w.asm_source);

    InterpSimulator oracle(*target.model);
    oracle.load(p);
    const RunResult want = oracle.run(100000);

    for (const SimLevel level : kAllLevels) {
      SCOPED_TRACE(sim_level_name(level));
      with_sim(*target.model, level, GuardPolicy::kRecompile, p,
               [&](auto& sim) {
        RunLimits limits;
        limits.watchdog_cycles = want.cycles / 2;
        std::uint64_t cycles = 0;
        try {
          sim.run(limits);
          FAIL() << "watchdog must fire mid-run";
        } catch (const SimError& e) {
          ASSERT_TRUE(e.recoverable());
          cycles = e.context().cycle;
        }
        const RunResult rest = sim.run(100000);
        EXPECT_TRUE(rest.halted);
        EXPECT_EQ(cycles + rest.cycles, want.cycles);
        EXPECT_TRUE(oracle.state() == sim.state());
      });
    }
  }
}

// -------------------------------------------------- checkpoint / restore

TEST(Checkpoint, MidRunRoundTripReplaysBitIdentically) {
  for (const SmcCase& smc : kSmcCases) {
    SCOPED_TRACE(smc.target_name);
    TestTarget target(smc.source(), smc.target_name);
    const workloads::Workload w = smc.make(5, 7);
    const LoadedProgram p = target.assemble(w.asm_source);

    InterpSimulator oracle(*target.model);
    oracle.load(p);
    const RunResult want = oracle.run(100000);
    const std::string want_state = oracle.state().dump_nonzero();

    for (const SimLevel level : kAllLevels) {
      for (const GuardPolicy policy : kPolicies) {
        // Checkpoint at several points: before the patch, around it, and
        // deep into phase 2, so in-flight pipeline slots of every flavor
        // (clean, stale, fallback) get snapshotted.
        for (const std::uint64_t at : {std::uint64_t{10}, want.cycles / 2,
                                       want.cycles - 5}) {
          SCOPED_TRACE(std::string(sim_level_name(level)) + " / " +
                       guard_policy_name(policy) + " @ " +
                       std::to_string(at));
          with_sim(*target.model, level, policy, p, [&](auto& sim) {
            const RunResult head = sim.run(at);
            ASSERT_FALSE(head.halted);
            const EngineCheckpoint cp = sim.save_checkpoint();
            const RunResult first = sim.run(100000);
            const std::string first_state = sim.state().dump_nonzero();
            EXPECT_TRUE(first.halted);
            EXPECT_EQ(head.cycles + first.cycles, want.cycles);
            EXPECT_EQ(first_state, want_state);

            sim.restore_checkpoint(cp);
            const RunResult replay = sim.run(100000);
            EXPECT_EQ(replay, first);
            EXPECT_EQ(sim.state().dump_nonzero(), first_state);
            EXPECT_TRUE(oracle.state() == sim.state());
          });
        }
      }
    }
  }
}

TEST(Checkpoint, RestoresIntoAFreshSimulatorInstance) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const workloads::Workload w = workloads::make_smc_tinydsp(5, 7);
  const LoadedProgram p = target.assemble(w.asm_source);

  CompiledSimulator a(*target.model, SimLevel::kCompiledStatic);
  a.set_guard_policy(GuardPolicy::kRecompile);
  a.load(p);
  ASSERT_FALSE(a.run(50).halted);
  const EngineCheckpoint cp = a.save_checkpoint();
  const RunResult want = a.run(100000);
  ASSERT_TRUE(want.halted);

  // A second simulator of the same model/level/program picks the snapshot
  // up and finishes identically (migration between simulator instances).
  CompiledSimulator b(*target.model, SimLevel::kCompiledStatic);
  b.set_guard_policy(GuardPolicy::kRecompile);
  b.load(p);
  b.restore_checkpoint(cp);
  EXPECT_EQ(b.run(100000), want);
  EXPECT_TRUE(a.state() == b.state());
}

TEST(Checkpoint, RestoreAfterWatchdogRewindsTheRun) {
  // checkpoint -> watchdog stop -> restore -> raise the limit -> finish:
  // the canonical recovery loop the recoverable error class exists for.
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const LoadedProgram p = target.assemble(kSpinAsm);
  CompiledSimulator sim(*target.model, SimLevel::kCompiledStatic);
  sim.load(p);
  ASSERT_FALSE(sim.run(100).halted);
  const EngineCheckpoint cp = sim.save_checkpoint();

  RunLimits limits;
  limits.watchdog_cycles = 50;
  EXPECT_THROW(sim.run(limits), SimError);
  sim.restore_checkpoint(cp);
  const RunResult r = sim.run(75);
  EXPECT_EQ(r.cycles, 75u) << "restored run continues past the old stop";
  EXPECT_FALSE(r.halted);
}

// ------------------------------------------------- table-cache integration

TEST(GuardedCache, SelfModifiedProgramsInvalidateTheirCachedTables) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const workloads::Workload w = workloads::make_smc_tinydsp(5, 7);
  const LoadedProgram p = target.assemble(w.asm_source);

  SimTableCache cache;
  CompiledSimulator sim(*target.model, SimLevel::kCompiledStatic);
  sim.set_table_cache(&cache);
  sim.set_guard_policy(GuardPolicy::kRecompile);

  const SimCompileStats cold = sim.load(p);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.cache_misses, 1u);
  ASSERT_TRUE(sim.run(100000).halted);
  EXPECT_GT(sim.guarded_writes(), 0u);

  // The program wrote its own text, so the cached table describes code the
  // image no longer holds: the reload must not be served from the cache.
  const SimCompileStats again = sim.load(p);
  EXPECT_FALSE(again.cache_hit) << "stale table must not be served";
  EXPECT_GE(cache.stats().invalidations, 1u);
  ASSERT_TRUE(sim.run(100000).halted);
  EXPECT_EQ(reg_of(*target.model, sim.state(), "dmem", 32), 94);
}

TEST(GuardedCache, CleanProgramsKeepHittingTheCache) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const LoadedProgram p = target.assemble(kSpinAsm);

  SimTableCache cache;
  CompiledSimulator sim(*target.model, SimLevel::kCompiledStatic);
  sim.set_table_cache(&cache);
  sim.set_guard_policy(GuardPolicy::kRecompile);

  EXPECT_FALSE(sim.load(p).cache_hit);
  sim.run(100);
  EXPECT_EQ(sim.guarded_writes(), 0u);
  const SimCompileStats warm = sim.load(p);
  EXPECT_TRUE(warm.cache_hit) << "no self-modification, no invalidation";
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.cache_misses, 1u);
  EXPECT_EQ(warm.cache_evictions, 0u);
}

TEST(GuardedCache, InvalidateDropsEveryLevelOfAProgram) {
  TestTarget target(targets::tinydsp_model_source(), "tinydsp");
  const LoadedProgram p = target.assemble(kSpinAsm);
  SimTableCache cache;
  for (const SimLevel level :
       {SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic}) {
    CompiledSimulator sim(*target.model, level);
    sim.set_table_cache(&cache);
    sim.load(p);
  }
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.invalidate(SimTableCache::hash_program(p)), 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.invalidate(0xDEADBEEF), 0u) << "unknown hash is a no-op";
}

}  // namespace
}  // namespace lisasim
