// Differential harness across all simulation levels (paper §6.2 accuracy
// claim, locked in as a test): for every target × workload program, the
// interpretive, decode-cached and both compiled levels must produce an
// identical RunResult (cycles, fetches, packets retired) and an identical
// final ProcessorState. On top, the compiled levels must be insensitive
// to how their simulation table was built: parallel sharded compilation
// and cache-served tables replay the exact same run.
#include <gtest/gtest.h>

#include "fuzz/progen.hpp"
#include "sim/batched.hpp"
#include "sim_test_util.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::DiffProgram;
using testing::TestTarget;

struct TargetCase {
  const char* name;
  std::string_view (*source)();
};

const TargetCase kTargets[] = {
    {"tinydsp", targets::tinydsp_model_source},
    {"c54x", targets::c54x_model_source},
    {"c62x", targets::c62x_model_source},
};

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  const TargetCase& target_case() const { return kTargets[GetParam()]; }
};

/// Programs for a target: the hand-written per-target suites from
/// sim_test_util.hpp, plus the paper's workload generators on c62x.
std::vector<DiffProgram> programs_for(const std::string& target) {
  std::vector<DiffProgram> programs = testing::differential_workloads(target);
  if (target == "c62x") {
    for (const workloads::Workload& w :
         {workloads::make_fir(8, 16), workloads::make_adpcm(24),
          workloads::make_gsm(40)})
      programs.push_back({w.name, w.asm_source});
  }
  return programs;
}

TEST_P(DifferentialTest, AllLevelsAgreeOnEveryWorkload) {
  const TargetCase& tc = target_case();
  TestTarget target(tc.source(), tc.name);
  const std::vector<DiffProgram> programs = programs_for(tc.name);
  ASSERT_FALSE(programs.empty());
  for (const DiffProgram& program : programs) {
    SCOPED_TRACE(std::string(tc.name) + " / " + program.name);
    const LoadedProgram p = target.assemble(program.asm_source);
    const auto run = testing::run_all_levels(*target.model, p);
    EXPECT_TRUE(run.result.halted) << "workload must halt";
    EXPECT_GT(run.result.cycles, 0u);
  }
}

TEST_P(DifferentialTest, SelfModifyingCodeAgreesUnderGuards) {
  // The SMC workload patches its own loop body mid-run — the one program
  // class where compiled simulation is unsound without write guards. With
  // either guard policy, all four levels must still agree bit for bit.
  const TargetCase& tc = target_case();
  const std::string name = tc.name;
  TestTarget target(tc.source(), tc.name);
  // Gate on the machine description, not the target name: a model whose
  // ISA has no store recipe reaching program memory cannot express SMC at
  // all (c54x today), and the generator's capability probe is the single
  // source of truth for that.
  const fuzz::ProgramGenerator gen(*target.model);
  if (!gen.supports_smc())
    GTEST_SKIP() << name << ": ISA has no store that reaches program "
                 << "memory, self-modifying code is inexpressible";
  const workloads::Workload w = name == "tinydsp"
                                    ? workloads::make_smc_tinydsp()
                                    : workloads::make_smc_c62x();
  const LoadedProgram p = target.assemble(w.asm_source);
  for (const GuardPolicy policy :
       {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    SCOPED_TRACE(guard_policy_name(policy));
    const auto run = testing::run_all_levels(*target.model, p, 2'000'000,
                                             policy);
    EXPECT_TRUE(run.result.halted) << "SMC workload must halt";
  }
}

TEST_P(DifferentialTest, ParallelAndCachedTablesReplayIdentically) {
  const TargetCase& tc = target_case();
  TestTarget target(tc.source(), tc.name);
  SimTableCache cache;
  for (const DiffProgram& program : programs_for(tc.name)) {
    SCOPED_TRACE(std::string(tc.name) + " / " + program.name);
    const LoadedProgram p = target.assemble(program.asm_source);
    for (const SimLevel level :
         {SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic,
          SimLevel::kTrace}) {
      // Reference: sequential compile, no cache.
      CompiledSimulator reference(*target.model, level);
      reference.load(p);
      const RunResult want = reference.run(2'000'000);

      // Parallel sharded compile through the shared cache, run twice so
      // the second load is a cache hit. The trace tier compiles its table
      // at the static level, so its "cold" load hits the entry the
      // static iteration just populated — table sharing by design.
      CompiledSimulator sim(*target.model, level);
      sim.set_threads(4);
      sim.set_table_cache(&cache);
      const SimCompileStats cold = sim.load(p);
      EXPECT_EQ(cold.cache_hit, level == SimLevel::kTrace);
      EXPECT_EQ(sim.run(2'000'000), want);
      EXPECT_TRUE(reference.state() == sim.state());

      const SimCompileStats warm = sim.load(p);
      EXPECT_TRUE(warm.cache_hit);
      EXPECT_EQ(warm.decode_calls, 0u);
      EXPECT_EQ(sim.run(2'000'000), want);
      EXPECT_TRUE(reference.state() == sim.state());
      EXPECT_EQ(reference.table().signature(), sim.table().signature());
    }
  }
}

/// Deterministic per-lane stimulus: lane-dependent values in the first few
/// cells of the target's first non-fetch memory. Applied identically to a
/// batch lane and to its sequential reference after load, before run.
void perturb_lane(const Model& model, ProcessorState& state, unsigned lane) {
  for (const Resource& r : model.resources) {
    if (r.kind != ast::ResourceKind::kMemory || r.id == model.fetch_memory)
      continue;
    const std::uint64_t cells = std::min<std::uint64_t>(r.size, 4);
    for (std::uint64_t i = 0; i < cells; ++i)
      state.write(r.id, i,
                  static_cast<std::int64_t>(lane) * 5 +
                      static_cast<std::int64_t>(i) + 1);
    return;
  }
}

/// One sequential compiled-static run of lane `lane`'s stimulus. A thrown
/// SimError loses the RunResult (exactly as in the sequential API), so
/// errored lanes are compared by error text + final state.
struct LaneReference {
  RunResult result;
  bool errored = false;
  std::string error;
  std::string state_dump;
};

LaneReference lane_reference(CompiledSimulator& sim, const LoadedProgram& p,
                             unsigned lane, const RunLimits& limits) {
  sim.reload(p);
  perturb_lane(sim.model(), sim.state(), lane);
  LaneReference ref;
  try {
    ref.result = sim.run(limits);
  } catch (const SimError& e) {
    ref.errored = true;
    ref.error = e.what();
  }
  ref.state_dump = sim.state().dump_nonzero();
  return ref;
}

TEST_P(DifferentialTest, BatchedLanesMatchSequentialRuns) {
  // The batched lockstep engine's accuracy anchor: an N-lane batch must be
  // bit-identical, per lane, to N sequential compiled-static runs of the
  // same stimuli — hand-written workloads plus fuzz-generated programs
  // (SMC included), under both guard policies, at N = 4 and N = 16. The
  // watchdog keeps runaway generated programs finite; a watchdog expiry
  // must then reproduce the sequential error byte for byte.
  const TargetCase& tc = target_case();
  TestTarget target(tc.source(), tc.name);

  std::vector<DiffProgram> programs = programs_for(tc.name);
  const fuzz::ProgramGenerator generator(*target.model);
  fuzz::GenOptions gen_opts;
  gen_opts.max_packets = 24;
  for (std::uint64_t seed : {11u, 12u}) {
    const fuzz::GeneratedProgram g = generator.generate(seed, gen_opts);
    programs.push_back(
        {"fuzz_seed" + std::to_string(seed) + (g.has_smc ? "_smc" : ""),
         g.source});
  }

  RunLimits limits;
  limits.watchdog_cycles = 50'000;

  for (const DiffProgram& program : programs) {
    const LoadedProgram p = target.assemble(program.asm_source);
    for (const GuardPolicy policy :
         {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
      SCOPED_TRACE(std::string(tc.name) + " / " + program.name + " / " +
                   guard_policy_name(policy));

      // Compile once; the 16 sequential references and both batches all
      // share the one table, like production sweeps would.
      CompiledSimulator seq(*target.model, SimLevel::kCompiledStatic);
      seq.set_guard_policy(policy);
      seq.load(p);
      const std::shared_ptr<const SimTable> table = seq.table_ptr();

      std::vector<LaneReference> refs;
      for (unsigned lane = 0; lane < 16; ++lane)
        refs.push_back(lane_reference(seq, p, lane, limits));

      for (const unsigned lanes : {4u, 16u}) {
        BatchedSimulator batch(*target.model, lanes);
        batch.set_guard_policy(policy);
        batch.load_precompiled(p, table);
        for (unsigned l = 0; l < lanes; ++l)
          perturb_lane(*target.model, batch.lane_state(l), l);
        batch.run(limits);
        ASSERT_TRUE(batch.all_done());

        for (unsigned l = 0; l < lanes; ++l) {
          SCOPED_TRACE("N=" + std::to_string(lanes) + " lane " +
                       std::to_string(l));
          const LaneReference& ref = refs[l];
          const LaneRun& lane = batch.lane_run(l);
          EXPECT_EQ(lane.errored, ref.errored) << lane.error << ref.error;
          if (ref.errored)
            EXPECT_EQ(lane.error, ref.error);
          else
            EXPECT_EQ(lane.result, ref.result);
          // Dump equality is full architectural-state equality: the same
          // model, so equal non-zero renderings mean equal element values.
          EXPECT_EQ(batch.lane_state(l).dump_nonzero(), ref.state_dump);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, DifferentialTest, ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kTargets[info.param].name;
                         });

}  // namespace
}  // namespace lisasim
