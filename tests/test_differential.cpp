// Differential harness across all simulation levels (paper §6.2 accuracy
// claim, locked in as a test): for every target × workload program, the
// interpretive, decode-cached and both compiled levels must produce an
// identical RunResult (cycles, fetches, packets retired) and an identical
// final ProcessorState. On top, the compiled levels must be insensitive
// to how their simulation table was built: parallel sharded compilation
// and cache-served tables replay the exact same run.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::DiffProgram;
using testing::TestTarget;

struct TargetCase {
  const char* name;
  std::string_view (*source)();
};

const TargetCase kTargets[] = {
    {"tinydsp", targets::tinydsp_model_source},
    {"c54x", targets::c54x_model_source},
    {"c62x", targets::c62x_model_source},
};

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  const TargetCase& target_case() const { return kTargets[GetParam()]; }
};

/// Programs for a target: the hand-written per-target suites from
/// sim_test_util.hpp, plus the paper's workload generators on c62x.
std::vector<DiffProgram> programs_for(const std::string& target) {
  std::vector<DiffProgram> programs = testing::differential_workloads(target);
  if (target == "c62x") {
    for (const workloads::Workload& w :
         {workloads::make_fir(8, 16), workloads::make_adpcm(24),
          workloads::make_gsm(40)})
      programs.push_back({w.name, w.asm_source});
  }
  return programs;
}

TEST_P(DifferentialTest, AllLevelsAgreeOnEveryWorkload) {
  const TargetCase& tc = target_case();
  TestTarget target(tc.source(), tc.name);
  const std::vector<DiffProgram> programs = programs_for(tc.name);
  ASSERT_FALSE(programs.empty());
  for (const DiffProgram& program : programs) {
    SCOPED_TRACE(std::string(tc.name) + " / " + program.name);
    const LoadedProgram p = target.assemble(program.asm_source);
    const auto run = testing::run_all_levels(*target.model, p);
    EXPECT_TRUE(run.result.halted) << "workload must halt";
    EXPECT_GT(run.result.cycles, 0u);
  }
}

TEST_P(DifferentialTest, SelfModifyingCodeAgreesUnderGuards) {
  // The SMC workload patches its own loop body mid-run — the one program
  // class where compiled simulation is unsound without write guards. With
  // either guard policy, all four levels must still agree bit for bit.
  const TargetCase& tc = target_case();
  const std::string name = tc.name;
  if (name == "c54x") GTEST_SKIP() << "no SMC workload for c54x";
  TestTarget target(tc.source(), tc.name);
  const workloads::Workload w = name == "tinydsp"
                                    ? workloads::make_smc_tinydsp()
                                    : workloads::make_smc_c62x();
  const LoadedProgram p = target.assemble(w.asm_source);
  for (const GuardPolicy policy :
       {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    SCOPED_TRACE(guard_policy_name(policy));
    const auto run = testing::run_all_levels(*target.model, p, 2'000'000,
                                             policy);
    EXPECT_TRUE(run.result.halted) << "SMC workload must halt";
  }
}

TEST_P(DifferentialTest, ParallelAndCachedTablesReplayIdentically) {
  const TargetCase& tc = target_case();
  TestTarget target(tc.source(), tc.name);
  SimTableCache cache;
  for (const DiffProgram& program : programs_for(tc.name)) {
    SCOPED_TRACE(std::string(tc.name) + " / " + program.name);
    const LoadedProgram p = target.assemble(program.asm_source);
    for (const SimLevel level :
         {SimLevel::kCompiledDynamic, SimLevel::kCompiledStatic,
          SimLevel::kTrace}) {
      // Reference: sequential compile, no cache.
      CompiledSimulator reference(*target.model, level);
      reference.load(p);
      const RunResult want = reference.run(2'000'000);

      // Parallel sharded compile through the shared cache, run twice so
      // the second load is a cache hit. The trace tier compiles its table
      // at the static level, so its "cold" load hits the entry the
      // static iteration just populated — table sharing by design.
      CompiledSimulator sim(*target.model, level);
      sim.set_threads(4);
      sim.set_table_cache(&cache);
      const SimCompileStats cold = sim.load(p);
      EXPECT_EQ(cold.cache_hit, level == SimLevel::kTrace);
      EXPECT_EQ(sim.run(2'000'000), want);
      EXPECT_TRUE(reference.state() == sim.state());

      const SimCompileStats warm = sim.load(p);
      EXPECT_TRUE(warm.cache_hit);
      EXPECT_EQ(warm.decode_calls, 0u);
      EXPECT_EQ(sim.run(2'000'000), want);
      EXPECT_TRUE(reference.state() == sim.state());
      EXPECT_EQ(reference.table().signature(), sim.table().signature());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, DifferentialTest, ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kTargets[info.param].name;
                         });

}  // namespace
}  // namespace lisasim
