// Memory-hook (co-simulation bridge) tests: read overrides, write
// observation, region scoping, and identical device interaction across
// simulation levels.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}

class RecordingHook final : public MemoryHook {
 public:
  std::int64_t on_read(std::uint64_t index, std::int64_t stored) override {
    reads.emplace_back(index, stored);
    return read_override.value_or(stored);
  }
  void on_write(std::uint64_t index, std::int64_t value) override {
    writes.emplace_back(index, value);
  }

  std::vector<std::pair<std::uint64_t, std::int64_t>> reads;
  std::vector<std::pair<std::uint64_t, std::int64_t>> writes;
  std::optional<std::int64_t> read_override;
};

TEST(MemoryHook, ObservesWrites) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 42, R1
        MVK 100, R2
        ST R1, R2, 0
        ST R1, R2, 1
        ST R1, R2, 50        ; outside the hooked region
        HALT
  )");
  InterpSimulator sim(*tiny().model);
  sim.load(p);
  RecordingHook hook;
  sim.state().map_hook(tiny().model->resource_by_name("dmem")->id, 100, 110,
                       &hook);
  sim.run(1000);
  ASSERT_EQ(hook.writes.size(), 2u);
  EXPECT_EQ(hook.writes[0], (std::pair<std::uint64_t, std::int64_t>{100, 42}));
  EXPECT_EQ(hook.writes[1], (std::pair<std::uint64_t, std::int64_t>{101, 42}));
  // Backing storage is still updated.
  EXPECT_EQ(sim.state().read(tiny().model->resource_by_name("dmem")->id, 150),
            42);
}

TEST(MemoryHook, OverridesReads) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 100, R2
        LD R3, R2, 0
        HALT
  )");
  InterpSimulator sim(*tiny().model);
  sim.load(p);
  RecordingHook hook;
  hook.read_override = 777;
  sim.state().map_hook(tiny().model->resource_by_name("dmem")->id, 100, 101,
                       &hook);
  sim.run(1000);
  EXPECT_EQ(sim.state().read(tiny().model->resource_by_name("R")->id, 3),
            777);
  EXPECT_EQ(hook.reads.size(), 1u);
}

TEST(MemoryHook, IdenticalAcrossLevels) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 100, R2
        MVK 5, R1
        ST R1, R2, 0
        LD R3, R2, 0
        ST R3, R2, 1
        HALT
  )");
  auto run_level = [&](auto& sim) {
    RecordingHook hook;
    sim.load(p);
    sim.state().map_hook(tiny().model->resource_by_name("dmem")->id, 100,
                         102, &hook);
    sim.run(1000);
    return std::make_pair(hook.reads, hook.writes);
  };
  InterpSimulator interp(*tiny().model);
  CompiledSimulator dynamic(*tiny().model, SimLevel::kCompiledDynamic);
  CompiledSimulator stat(*tiny().model, SimLevel::kCompiledStatic);
  const auto a = run_level(interp);
  const auto b = run_level(dynamic);
  const auto c = run_level(stat);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a.first.empty());
  EXPECT_FALSE(a.second.empty());
}

TEST(MemoryHook, FirstRegisteredRegionWins) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 1, R1
        MVK 100, R2
        ST R1, R2, 0
        HALT
  )");
  InterpSimulator sim(*tiny().model);
  sim.load(p);
  RecordingHook first, second;
  const ResourceId dmem = tiny().model->resource_by_name("dmem")->id;
  sim.state().map_hook(dmem, 100, 101, &first);
  sim.state().map_hook(dmem, 90, 200, &second);
  sim.run(1000);
  EXPECT_EQ(first.writes.size(), 1u);
  EXPECT_TRUE(second.writes.empty());
}

TEST(MemoryHook, UnhookedStateIsUnaffected) {
  // Baseline sanity: a state with no hooks behaves exactly as before (and
  // the has_hooks_ fast path stays off).
  const LoadedProgram p = tiny().assemble(R"(
        MVK 9, R1
        MVK 3, R2
        ST R1, R2, 0
        LD R4, R2, 0
        HALT
  )");
  const auto run = testing::run_all_levels(*tiny().model, p);
  EXPECT_NE(run.state_dump.find("R[4] = 9"), std::string::npos);
}

}  // namespace
}  // namespace lisasim
