// Unit tests for the support library: bit manipulation, the sized-value
// type system, string interning and diagnostics.
#include <gtest/gtest.h>

#include "support/bits.hpp"
#include "support/diag.hpp"
#include "support/interner.hpp"
#include "support/value.hpp"

namespace lisasim {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(32), 0xFFFFFFFFu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractInsertRoundTrip) {
  const std::uint64_t word = 0xDEADBEEFCAFEBABEull;
  for (unsigned lsb : {0u, 3u, 17u, 32u, 60u}) {
    for (unsigned width : {1u, 4u, 11u, 16u}) {
      if (lsb + width > 64) continue;
      const std::uint64_t piece = extract_bits(word, lsb, width);
      EXPECT_TRUE(fits_unsigned(piece, width));
      const std::uint64_t rebuilt = insert_bits(word, lsb, width, piece);
      EXPECT_EQ(rebuilt, word) << "lsb=" << lsb << " width=" << width;
    }
  }
}

TEST(Bits, InsertReplacesOnlyTheField) {
  const std::uint64_t w = insert_bits(0xFFFFFFFFull, 8, 8, 0x00);
  EXPECT_EQ(w, 0xFFFF00FFull);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xF, 4), -1);
  EXPECT_EQ(sign_extend(0x7, 4), 7);
  EXPECT_EQ(sign_extend(0x8, 4), -8);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x1234, 16), 0x1234);
  EXPECT_EQ(sign_extend(5, 64), 5);
}

TEST(Bits, Truncate) {
  EXPECT_EQ(truncate(-1, 8), 0xFFu);
  EXPECT_EQ(truncate(256, 8), 0u);
  EXPECT_EQ(truncate(-32768, 16), 0x8000u);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(-8, 4));
  EXPECT_TRUE(fits_signed(7, 4));
  EXPECT_FALSE(fits_signed(8, 4));
  EXPECT_FALSE(fits_signed(-9, 4));
  EXPECT_TRUE(fits_signed(INT64_MIN, 64));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(15, 4));
  EXPECT_FALSE(fits_unsigned(16, 4));
  EXPECT_TRUE(fits_unsigned(0, 1));
}

TEST(ValueType, ParseKnownNames) {
  for (const char* name :
       {"int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
        "uint64", "bool"}) {
    const auto t = ValueType::parse(name);
    ASSERT_TRUE(t.has_value()) << name;
    EXPECT_EQ(t->to_string(), name);
  }
}

TEST(ValueType, ParseRejectsUnknown) {
  EXPECT_FALSE(ValueType::parse("int7").has_value());
  EXPECT_FALSE(ValueType::parse("float").has_value());
  EXPECT_FALSE(ValueType::parse("int").has_value());
  EXPECT_FALSE(ValueType::parse("uint").has_value());
  EXPECT_FALSE(ValueType::parse("int128").has_value());
}

TEST(ValueType, CanonicalizeSigned) {
  const ValueType t{16, true};
  EXPECT_EQ(t.canonicalize(32767), 32767);
  EXPECT_EQ(t.canonicalize(32768), -32768);
  EXPECT_EQ(t.canonicalize(-32769), 32767);
  EXPECT_EQ(t.canonicalize(65536), 0);
}

TEST(ValueType, CanonicalizeUnsigned) {
  const ValueType t{8, false};
  EXPECT_EQ(t.canonicalize(255), 255);
  EXPECT_EQ(t.canonicalize(256), 0);
  EXPECT_EQ(t.canonicalize(-1), 255);
}

TEST(Interner, DistinctAndStable) {
  StringInterner interner;
  const StringId a = interner.intern("alpha");
  const StringId b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.str(a), "alpha");
  EXPECT_EQ(interner.lookup("beta"), b);
  EXPECT_EQ(interner.lookup("missing"), 0u);
}

TEST(Interner, ManyStringsStayValid) {
  StringInterner interner;
  std::vector<StringId> ids;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(interner.intern("sym" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(interner.str(ids[static_cast<std::size_t>(i)]),
              "sym" + std::to_string(i));
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({"f", 1, 1}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({"f", 2, 3}, "bad");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_NE(diags.render().find("f:2:3: error: bad"), std::string::npos);
}

}  // namespace
}  // namespace lisasim
