// Edge-case tests across components: error paths and unusual-but-legal
// model shapes that the main suites do not reach.
#include <gtest/gtest.h>

#include "behavior/eval.hpp"
#include "behavior/microops.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/database.hpp"
#include "model/sema.hpp"
#include "sim_test_util.hpp"

namespace lisasim {
namespace {

TEST(EdgeCase, SwitchWithoutMatchingCaseOrDefaultDoesNothing) {
  const char* source = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY int32 m[8]; int64 s;
               PIPELINE pipe = { EX; }; }
    FETCH { WORD 8; MEMORY m; }
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL k; }
      CODING { k=0bx[8] }
      SWITCH (k) {
        CASE 1: { BEHAVIOR { s = 10; } }
      }
    }
  )";
  auto model = compile_model_source_or_throw(source, "edge");
  Decoder decoder(*model);
  ProcessorState state(*model);
  PipelineControl control;
  Evaluator eval(state, control);
  // k = 5: no case matches, no default -> nothing executes.
  DecodedNodePtr node = decoder.decode(5);
  ASSERT_NE(node, nullptr);
  eval.run_op(*node, nullptr);
  EXPECT_EQ(state.read(model->resource_by_name("s")->id), 0);
  // And the specializer produces an empty schedule for it.
  Specializer specializer(*model);
  std::vector<std::int64_t> words = {5};
  PacketSchedule schedule =
      specializer.schedule_packet(decoder.decode_packet(words, 0));
  EXPECT_TRUE(schedule.stage_programs[0].empty());
}

TEST(EdgeCase, NestedCodingTimeConditionals) {
  const char* source = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY int32 m[8]; int64 s;
               PIPELINE pipe = { EX; }; }
    FETCH { WORD 8; MEMORY m; }
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a, b; }
      CODING { a=0bx[4] b=0bx[4] }
      IF (a > 7) {
        IF (b > 7) {
          BEHAVIOR { s = 1; }
        } ELSE {
          BEHAVIOR { s = 2; }
        }
      } ELSE IF (b == 0) {
        BEHAVIOR { s = 3; }
      } ELSE {
        BEHAVIOR { s = 4; }
      }
    }
  )";
  auto model = compile_model_source_or_throw(source, "edge");
  Decoder decoder(*model);
  Specializer specializer(*model);
  const auto value_for = [&](std::uint64_t word) {
    std::vector<std::int64_t> words = {static_cast<std::int64_t>(word)};
    PacketSchedule schedule =
        specializer.schedule_packet(decoder.decode_packet(words, 0));
    return schedule.stage_programs[0].stmts.at(0)->to_string();
  };
  EXPECT_EQ(value_for(0x99), "s = 1;\n");
  EXPECT_EQ(value_for(0x91), "s = 2;\n");
  EXPECT_EQ(value_for(0x10), "s = 3;\n");
  EXPECT_EQ(value_for(0x11), "s = 4;\n");
}

TEST(EdgeCase, ExpressionOnlyGroupsSelectPerAlternative) {
  // SWITCH over a group where cases are operation identities.
  const char* source = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY int32 m[8]; int64 s;
               PIPELINE pipe = { EX; }; }
    FETCH { WORD 8; MEMORY m; }
    OPERATION small { CODING { 0b0 } }
    OPERATION big   { CODING { 0b1 } }
    OPERATION instruction IN pipe.EX {
      DECLARE { GROUP size = { small || big }; LABEL v; }
      CODING { size v=0bx[7] }
      SWITCH (size) {
        CASE small: { BEHAVIOR { s = v; } }
        CASE big:   { BEHAVIOR { s = v * 1000; } }
      }
    }
  )";
  auto model = compile_model_source_or_throw(source, "edge");
  Decoder decoder(*model);
  ProcessorState state(*model);
  PipelineControl control;
  Evaluator eval(state, control);
  const ResourceId s = model->resource_by_name("s")->id;

  DecodedNodePtr node = decoder.decode(0x05);  // small, v=5
  eval.run_op(*node, nullptr);
  EXPECT_EQ(state.read(s), 5);
  node = decoder.decode(0x85);  // big, v=5
  eval.run_op(*node, nullptr);
  EXPECT_EQ(state.read(s), 5000);
}

TEST(EdgeCase, SixtyFourBitWordModel) {
  // Word width at the engine's 64-bit ceiling.
  const char* source = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY int64 m[8]; int64 s;
               PIPELINE pipe = { EX; }; }
    FETCH { WORD 64; MEMORY m; }
    OPERATION wide IN pipe.EX {
      DECLARE { LABEL imm; }
      CODING { 0b1010 imm=0bx[60] }
      SYNTAX { "WIDE " imm }
      BEHAVIOR { s = imm; halt(); }
    }
    OPERATION instruction {
      DECLARE { GROUP insn = { wide }; }
      CODING { insn }
      SYNTAX { insn }
    }
  )";
  auto model = compile_model_source_or_throw(source, "wide");
  Decoder decoder(*model);
  const std::uint64_t word =
      (0b1010ull << 60) | 0x0123456789ABCDEull;
  DecodedNodePtr node = decoder.decode(word);
  ASSERT_NE(node, nullptr);
  const DecodedNode* wide = node->children.at(0).get();
  ASSERT_NE(wide, nullptr);
  ASSERT_EQ(wide->op->name, "wide");
  EXPECT_EQ(static_cast<std::uint64_t>(wide->fields.at(0)),
            0x0123456789ABCDEull);
  EXPECT_EQ(decoder.encode(*node), word);
}

TEST(EdgeCase, SingleStagePipelineRuns) {
  const char* source = R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY uint32 m[16]; int64 s;
               PIPELINE pipe = { GO; }; }
    FETCH { WORD 8; MEMORY m; }
    OPERATION bump IN pipe.GO {
      CODING { 0b00000001 }
      SYNTAX { "BUMP" }
      BEHAVIOR { s = s + 1; }
    }
    OPERATION stop IN pipe.GO {
      CODING { 0b11111111 }
      SYNTAX { "STOP" }
      BEHAVIOR { halt(); }
    }
    OPERATION instruction {
      DECLARE { GROUP insn = { bump || stop }; }
      CODING { insn }
      SYNTAX { insn }
    }
  )";
  testing::TestTarget target(source, "one-stage");
  const LoadedProgram p = target.assemble("BUMP\nBUMP\nBUMP\nSTOP\n");
  const auto run = testing::run_all_levels(*target.model, p);
  EXPECT_TRUE(run.result.halted);
  EXPECT_NE(run.state_dump.find("s = 3"), std::string::npos)
      << run.state_dump;
  // One stage: each instruction completes the cycle after its fetch.
  EXPECT_EQ(run.result.cycles, 5u);
}

TEST(EdgeCase, MicroOpsRejectUnspecializedSymbols) {
  SpecProgram program;
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kExpr;
  stmt->value = Expr::make_sym("ghost");
  stmt->value->sym.kind = SymKind::kField;
  stmt->value->sym.index = 0;
  program.stmts.push_back(std::move(stmt));
  EXPECT_THROW(lower_to_microops(program), SimError);
}

TEST(EdgeCase, DatabaseRejectsGarbage) {
  DiagnosticEngine diags;
  EXPECT_EQ(load_model("not a model at all {{{", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(EdgeCase, LoadModelFromMissingFileThrows) {
  EXPECT_THROW(load_model_from_file("/nonexistent/model.lisa"), SimError);
}

}  // namespace
}  // namespace lisasim
