// Specializer tests: compile-time decoding (fields -> constants), operand
// inlining, coding-time conditional folding, predicate elimination,
// constant arithmetic, schedule construction and error cases.
#include <gtest/gtest.h>

#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"
#include "targets/c62x.hpp"

namespace lisasim {
namespace {

struct SpecHarness {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;
  std::unique_ptr<Specializer> specializer;

  explicit SpecHarness(const std::string& source) {
    model = compile_model_source_or_throw(source, "spec-test");
    decoder = std::make_unique<Decoder>(*model);
    specializer = std::make_unique<Specializer>(*model);
  }

  DecodedNodePtr decode(std::uint64_t word) {
    auto node = decoder->decode(word);
    EXPECT_NE(node, nullptr);
    return node;
  }

  /// Specialized text of the whole stage-s program for a 1-word packet.
  std::string stage_text(std::uint64_t word, int stage) {
    std::vector<std::int64_t> words = {static_cast<std::int64_t>(word)};
    DecodedPacket packet = decoder->decode_packet(words, 0);
    PacketSchedule schedule = specializer->schedule_packet(packet);
    std::string out;
    for (const auto& stmt :
         schedule.stage_programs[static_cast<std::size_t>(stage)].stmts)
      out += stmt->to_string();
    return out;
  }
};

constexpr const char* kBaseModel = R"(
  RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int32 R[8];
    MEMORY int32 m[32];
    int64 s;
    PIPELINE pipe = { EX; WB; };
  }
  FETCH { WORD 16; MEMORY m; }
)";

TEST(Specialize, FieldsBecomeConstants) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a, b; }
      CODING { a=0bx[8] b=0bx[8] }
      BEHAVIOR { s = a + b; }
    }
  )");
  EXPECT_EQ(h.stage_text((3u << 8) | 4u, 0), "s = 7;\n");
}

TEST(Specialize, OperandExpressionsAreInlined) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION rop {
      DECLARE { LABEL i; }
      CODING { i=0bx[3] }
      EXPRESSION { R[i] }
    }
    OPERATION instruction IN pipe.EX {
      DECLARE { INSTANCE dst = rop; INSTANCE src = rop; }
      CODING { dst src 0b0000000000 }
      BEHAVIOR { dst = src + 1; }
    }
  )");
  // dst = R5, src = R2: specialization produces direct indexed accesses.
  EXPECT_EQ(h.stage_text((5u << 13) | (2u << 10), 0), "R[5] = (R[2] + 1);\n");
}

TEST(Specialize, CodingTimeIfSelectsBranch) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL mode, v; }
      CODING { mode=0bx[1] v=0bx[8] 0b0000000 }
      IF (mode == 1) {
        BEHAVIOR { s = v * 2; }
      } ELSE {
        BEHAVIOR { s = v; }
      }
    }
  )");
  EXPECT_EQ(h.stage_text((1u << 15) | (10u << 7), 0), "s = 20;\n");
  EXPECT_EQ(h.stage_text((0u << 15) | (10u << 7), 0), "s = 10;\n");
}

TEST(Specialize, IdentityComparisonFoldsGroupChoice) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION variant_a { CODING { 0b0 } }
    OPERATION variant_b { CODING { 0b1 } }
    OPERATION instruction IN pipe.EX {
      DECLARE { GROUP which = { variant_a || variant_b }; }
      CODING { which 0b000000000000000 }
      IF (which == variant_b) {
        BEHAVIOR { s = 100; }
      } ELSE {
        BEHAVIOR { s = 200; }
      }
    }
  )");
  EXPECT_EQ(h.stage_text(1u << 15, 0), "s = 100;\n");
  EXPECT_EQ(h.stage_text(0u << 15, 0), "s = 200;\n");
}

TEST(Specialize, SwitchSelectsCase) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL k; }
      CODING { k=0bx[2] 0b00000000000000 }
      SWITCH (k) {
        CASE 0: { BEHAVIOR { s = 10; } }
        CASE 1: { BEHAVIOR { s = 11; } }
        DEFAULT: { BEHAVIOR { s = 99; } }
      }
    }
  )");
  EXPECT_EQ(h.stage_text(0u << 14, 0), "s = 10;\n");
  EXPECT_EQ(h.stage_text(1u << 14, 0), "s = 11;\n");
  EXPECT_EQ(h.stage_text(3u << 14, 0), "s = 99;\n");
}

TEST(Specialize, TruePredicateDisappears) {
  // The headline win: an unpredicated instruction loses its guard.
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  Specializer specializer(*model);
  // Unpredicated ADD A1, A2, A3 (pred = 0b0000).
  const std::uint32_t add =
      (0b000001u << 22) | (3u << 17) | (1u << 12) | (2u << 7);
  std::vector<std::int64_t> words = {static_cast<std::int64_t>(add)};
  DecodedPacket packet = decoder.decode_packet(words, 0);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  const int e1 = model->pipeline.stage_index("E1");
  const auto& program =
      schedule.stage_programs[static_cast<std::size_t>(e1)];
  ASSERT_EQ(program.stmts.size(), 1u);
  EXPECT_EQ(program.stmts[0]->to_string(), "A[3] = (A[1] + A[2]);\n");

  // Predicated [B0] version keeps a runtime test on B[0].
  const std::uint32_t pred_add = add | (0b0010u << 28);
  words[0] = static_cast<std::int64_t>(pred_add);
  packet = decoder.decode_packet(words, 0);
  schedule = specializer.schedule_packet(packet);
  const std::string text =
      schedule.stage_programs[static_cast<std::size_t>(e1)]
          .stmts[0]
          ->to_string();
  EXPECT_NE(text.find("if ((B[0] != 0))"), std::string::npos) << text;
}

TEST(Specialize, ConstantFoldingAcrossOperators) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      BEHAVIOR {
        s = sext(a, 4) + (a > 100 ? 1000 : 2000) + min(a, 3);
      }
    }
  )");
  // a = 9: sext(9,4) = -7; 9 > 100 false -> 2000; min(9,3) = 3 -> 1996
  EXPECT_EQ(h.stage_text(9u << 8, 0), "s = 1996;\n");
}

TEST(Specialize, DivisionByConstantZeroIsKeptForRuntime) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      BEHAVIOR { s = 1 / a; }
    }
  )");
  // a = 0: the fold must NOT turn this into a compile-time crash.
  const std::string text = h.stage_text(0, 0);
  EXPECT_NE(text.find("/"), std::string::npos) << text;
}

TEST(Specialize, RuntimeConditionSurvives) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      BEHAVIOR {
        if (R[0] > a) { s = 1; } else { s = 2; }
      }
    }
  )");
  const std::string text = h.stage_text(7u << 8, 0);
  EXPECT_NE(text.find("if ((R[0] > 7))"), std::string::npos) << text;
}

TEST(Specialize, NonStaticCodingTimeConditionThrows) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      IF (R[0] == 0) {
        BEHAVIOR { s = 1; }
      }
    }
  )");
  std::vector<std::int64_t> words = {0};
  DecodedPacket packet = h.decoder->decode_packet(words, 0);
  EXPECT_THROW(h.specializer->schedule_packet(packet), SimError);
}

TEST(Specialize, ActivationsLandInTheirStages) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION wb_op IN pipe.WB {
      DECLARE { REFERENCE a; }
      BEHAVIOR { s = a; }
    }
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      BEHAVIOR { R[0] = a; }
      ACTIVATION { wb_op }
    }
  )");
  EXPECT_EQ(h.stage_text(5u << 8, 0), "R[0] = 5;\n");  // EX column
  EXPECT_EQ(h.stage_text(5u << 8, 1), "s = 5;\n");     // WB column
}

TEST(Specialize, SameStageActivationInlinesInOrder) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION helper IN pipe.EX {
      BEHAVIOR { s = s + 1; }
    }
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      BEHAVIOR { s = 10; }
      ACTIVATION { helper }
      BEHAVIOR { s = s * 2; }
    }
  )");
  // order: s=10; helper (s=11); s=22 — activation inlined between the two
  // behavior sections.
  EXPECT_EQ(h.stage_text(0, 0), "s = 10;\ns = (s + 1);\ns = (s * 2);\n");
}

TEST(Specialize, LocalSlotsAreRebasedWhenMerging) {
  SpecHarness h(std::string(kBaseModel) + R"(
    OPERATION helper IN pipe.EX {
      BEHAVIOR { int32 t = 5; s = s + t; }
    }
    OPERATION instruction IN pipe.EX {
      DECLARE { LABEL a; }
      CODING { a=0bx[8] 0b00000000 }
      BEHAVIOR { int32 t = 100; s = t; }
      ACTIVATION { helper }
    }
  )");
  std::vector<std::int64_t> words = {0};
  DecodedPacket packet = h.decoder->decode_packet(words, 0);
  PacketSchedule schedule = h.specializer->schedule_packet(packet);
  const auto& program = schedule.stage_programs[0];
  EXPECT_EQ(program.num_locals, 2);
  // Distinct slots for the two `t`s.
  ASSERT_GE(program.stmts.size(), 4u);
  EXPECT_NE(program.stmts[0]->local_slot, program.stmts[2]->local_slot);
}

TEST(Specialize, MultipleSlotsOfAPacketMergeInSlotOrder) {
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  Decoder decoder(*model);
  Specializer specializer(*model);
  // Packet: MVK 1, A1 || MVK 2, A2 (first word p-bit set).
  const std::uint32_t mvk1 =
      (0b010011u << 22) | (1u << 17) | (1u << 1) | 1u;
  const std::uint32_t mvk2 = (0b010011u << 22) | (2u << 17) | (2u << 1);
  std::vector<std::int64_t> words = {static_cast<std::int64_t>(mvk1),
                                     static_cast<std::int64_t>(mvk2)};
  DecodedPacket packet = decoder.decode_packet(words, 0);
  ASSERT_EQ(packet.slots.size(), 2u);
  PacketSchedule schedule = specializer.schedule_packet(packet);
  const int e1 = model->pipeline.stage_index("E1");
  const auto& program =
      schedule.stage_programs[static_cast<std::size_t>(e1)];
  ASSERT_EQ(program.stmts.size(), 2u);
  EXPECT_EQ(program.stmts[0]->to_string(), "A[1] = 1;\n");
  EXPECT_EQ(program.stmts[1]->to_string(), "A[2] = 2;\n");
}

}  // namespace
}  // namespace lisasim
