// MicroArena packing, peephole soundness and micro-op edge cases: the
// satellite coverage around the flat execution core — arena append/splice
// determinism, empty spans, compile-time branch-target validation,
// branch-over-branch lowering, intrinsic arity, division SimError paths and
// temp-scratch reuse across packets sharing one arena.
#include <gtest/gtest.h>

#include "behavior/eval.hpp"
#include "behavior/microarena.hpp"
#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"

namespace lisasim {
namespace {

constexpr const char* kModel = R"(
  RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int32 R[8];
    MEMORY int32 m[32];
    int64 s;
    PIPELINE pipe = { EX; };
  }
  FETCH { WORD 16; MEMORY m; }
  OPERATION instruction IN pipe.EX {
    DECLARE { LABEL a, b; }
    CODING { a=0bx[8] b=0bx[8] }
    BEHAVIOR {
      BODY
    }
  }
)";

struct ArenaHarness {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;
  std::unique_ptr<Specializer> specializer;

  explicit ArenaHarness(const std::string& body) {
    std::string source = kModel;
    source.replace(source.find("BODY"), 4, body);
    model = compile_model_source_or_throw(source, "arena-test");
    decoder = std::make_unique<Decoder>(*model);
    specializer = std::make_unique<Specializer>(*model);
  }

  MicroProgram lower(std::uint8_t a, std::uint8_t b, bool optimize = true) {
    std::vector<std::int64_t> words = {
        static_cast<std::int64_t>((static_cast<unsigned>(a) << 8) | b)};
    DecodedPacket packet = decoder->decode_packet(words, 0);
    PacketSchedule schedule = specializer->schedule_packet(packet);
    MicroProgram mp = lower_to_microops(schedule.stage_programs[0]);
    if (optimize) optimize_microops(mp);
    return mp;
  }
};

// ---- arena packing ---------------------------------------------------------

TEST(MicroArena, AppendPacksContiguously) {
  ArenaHarness h("s = a + b; R[1] = s * 2;");
  const MicroProgram p1 = h.lower(1, 2);
  const MicroProgram p2 = h.lower(3, 4);
  MicroArena arena;
  const MicroSpan s1 = arena.append(p1);
  const MicroSpan s2 = arena.append(p2);
  EXPECT_EQ(s1.offset, 0u);
  EXPECT_EQ(s1.len, p1.ops.size());
  EXPECT_EQ(s2.offset, p1.ops.size());
  EXPECT_EQ(arena.size(), p1.ops.size() + p2.ops.size());
  EXPECT_EQ(arena.max_temps(), std::max(p1.num_temps, p2.num_temps));
  EXPECT_EQ(microops_to_string(arena.data() + s1.offset, s1.len),
            microops_to_string(p1));
  EXPECT_EQ(microops_to_string(arena.data() + s2.offset, s2.len),
            microops_to_string(p2));
}

TEST(MicroArena, SpliceReproducesSequentialLayout) {
  // The parallel-build merge invariant in miniature: appending shard
  // arenas in shard order must equal the sequential single-arena build.
  ArenaHarness h("s = a * b; m[a % 32] = s;");
  std::vector<MicroProgram> programs;
  for (int i = 0; i < 6; ++i)
    programs.push_back(h.lower(static_cast<std::uint8_t>(i + 1),
                               static_cast<std::uint8_t>(2 * i + 1)));

  MicroArena sequential;
  std::vector<MicroSpan> seq_spans;
  for (const auto& p : programs) seq_spans.push_back(sequential.append(p));

  MicroArena shard_a, shard_b, merged;
  std::vector<MicroSpan> par_spans;
  for (int i = 0; i < 3; ++i) par_spans.push_back(shard_a.append(programs[i]));
  for (int i = 3; i < 6; ++i) par_spans.push_back(shard_b.append(programs[i]));
  const std::uint32_t base_a = merged.splice(shard_a);
  const std::uint32_t base_b = merged.splice(shard_b);
  for (int i = 0; i < 3; ++i) par_spans[i].offset += base_a;
  for (int i = 3; i < 6; ++i) par_spans[static_cast<std::size_t>(i)].offset +=
      base_b;

  ASSERT_EQ(merged.size(), sequential.size());
  EXPECT_EQ(merged.max_temps(), sequential.max_temps());
  EXPECT_EQ(microops_to_string(merged.data(), merged.size()),
            microops_to_string(sequential.data(), sequential.size()));
  for (std::size_t i = 0; i < seq_spans.size(); ++i) {
    EXPECT_EQ(par_spans[i].offset, seq_spans[i].offset);
    EXPECT_EQ(par_spans[i].len, seq_spans[i].len);
    EXPECT_EQ(par_spans[i].num_temps, seq_spans[i].num_temps);
  }
}

TEST(MicroArena, EmptySpansAreValidNoOps) {
  ArenaHarness h("s = 1;");
  MicroArena arena;
  const MicroSpan empty = arena.append(MicroProgram{});
  const MicroSpan real = arena.append(h.lower(0, 0));
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(real.empty());
  EXPECT_EQ(arena.view(empty).size(), 0u);

  ProcessorState state(*h.model);
  PipelineControl control;
  std::vector<std::int64_t> temps(
      static_cast<std::size_t>(arena.max_temps()), 0);
  exec_microops(arena.data() + empty.offset, empty.len, arena.pool_data(),
                state, control, temps.data());  // no-op, no crash
  exec_microops(arena.data() + real.offset, real.len, arena.pool_data(),
                state, control, temps.data());
  EXPECT_EQ(state.dump_nonzero(), "s = 1\n");
}

TEST(MicroArena, TempScratchReusedAcrossPackets) {
  // One shared scratch buffer sized by the arena maximum, reused across
  // spans without clearing, must give the same results as fresh per-span
  // buffers (the write-before-read lowering guarantee).
  ArenaHarness h(R"(
    int32 t = a * 3 + b;
    R[a % 8] = t;
    s = s + t;
  )");
  std::vector<MicroProgram> programs;
  for (int i = 0; i < 4; ++i)
    programs.push_back(h.lower(static_cast<std::uint8_t>(7 * i + 2),
                               static_cast<std::uint8_t>(5 * i + 1)));
  MicroArena arena;
  std::vector<MicroSpan> spans;
  for (const auto& p : programs) spans.push_back(arena.append(p));

  ProcessorState shared_state(*h.model);
  PipelineControl control;
  std::vector<std::int64_t> shared_temps(
      static_cast<std::size_t>(arena.max_temps()), -1);  // poisoned scratch
  for (const MicroSpan& span : spans)
    exec_microops(arena.data() + span.offset, span.len, arena.pool_data(),
                  shared_state, control, shared_temps.data());

  ProcessorState fresh_state(*h.model);
  for (const auto& p : programs) {
    std::vector<std::int64_t> temps;  // fresh scratch per packet
    run_microops(p, fresh_state, control, temps);
  }
  EXPECT_TRUE(shared_state == fresh_state)
      << shared_state.dump_nonzero() << "\nvs\n" << fresh_state.dump_nonzero();
}

// ---- compile-time validation ----------------------------------------------

MicroProgram branch_program(MKind kind, std::int32_t target) {
  MicroProgram mp;
  mp.num_temps = 1;
  mp.ops.push_back(mo_const(0, 0));
  mp.ops.push_back(kind == MKind::kBr ? mo_br(target)
                                      : mo_brzero(0, target));
  return mp;
}

TEST(MicroValidate, BranchTargetsOutsideProgramThrowAtCompileTime) {
  // Regression: an out-of-range target must be a SimError when the program
  // is built, never an out-of-bounds dispatch while simulating.
  EXPECT_THROW(validate_microops(branch_program(MKind::kBr, 3)), SimError);
  EXPECT_THROW(validate_microops(branch_program(MKind::kBrZero, 99)),
               SimError);
  EXPECT_THROW(validate_microops(branch_program(MKind::kBr, -1)), SimError);
  // Target == size is the regular fall-off-the-end exit.
  EXPECT_NO_THROW(validate_microops(branch_program(MKind::kBr, 2)));
  EXPECT_NO_THROW(validate_microops(branch_program(MKind::kBrZero, 0)));
}

TEST(MicroValidate, TempsOutsideScratchThrow) {
  MicroProgram mp;
  mp.num_temps = 1;
  mp.ops.push_back(mo_const(1, 0));
  EXPECT_THROW(validate_microops(mp), SimError);
  mp.ops[0] = mo_mov(0, -2);
  EXPECT_THROW(validate_microops(mp), SimError);
}

TEST(MicroValidate, ArityOnePaddingOperandIsNotChecked) {
  // abs() is arity 1: its c field is padding and may name any slot.
  MicroProgram mp;
  mp.num_temps = 2;
  mp.ops.push_back(mo_const(0, -5));
  // c = 77 is out of range, but unused at arity 1.
  mp.ops.push_back(mo_intr(Intrinsic::kAbs, 1, 0, 77));
  EXPECT_NO_THROW(validate_microops(mp));
  // Arity 2: now c is a real operand.
  mp.ops[1].sub = static_cast<std::uint8_t>(Intrinsic::kSext);
  EXPECT_THROW(validate_microops(mp), SimError);
}

// ---- lowering / peephole edge cases ---------------------------------------

TEST(MicroEdge, BranchOverBranch) {
  // `||` lowers to a brzero jumping over an unconditional br; nesting it in
  // an if/else stacks branch-over-branch. Exercise both truth sides and
  // the optimized form.
  ArenaHarness h(R"(
    if ((a != 0 || b != 0) && (a != 1 || b != 1)) { s = 1; } else { s = 2; }
  )");
  struct Case { std::uint8_t a, b; std::int64_t expect; };
  for (const Case c : {Case{0, 0, 2}, Case{1, 1, 2}, Case{1, 0, 1},
                       Case{0, 2, 1}}) {
    for (const bool optimize : {false, true}) {
      const MicroProgram mp = h.lower(c.a, c.b, optimize);
      ProcessorState state(*h.model);
      PipelineControl control;
      std::vector<std::int64_t> temps;
      run_microops(mp, state, control, temps);
      EXPECT_EQ(state.read(h.model->resource_by_name("s")->id), c.expect)
          << "a=" << int(c.a) << " b=" << int(c.b)
          << " optimize=" << optimize << "\n" << microops_to_string(mp);
    }
  }
}

TEST(MicroEdge, DivisionAndRemainderByZeroStillThrowAfterOptimize) {
  for (const char* body : {"s = 1 / R[0];", "s = 1 % R[0];"}) {
    ArenaHarness h(body);
    const MicroProgram mp = h.lower(0, 0);  // optimized
    ProcessorState state(*h.model);
    PipelineControl control;
    std::vector<std::int64_t> temps;
    EXPECT_THROW(run_microops(mp, state, control, temps), SimError);
  }
}

TEST(MicroEdge, ConstantDivisionByZeroIsNotFoldedAway) {
  // Both operands constant and divisor zero: the peephole must keep the op
  // (folding would silently drop the run-time SimError).
  MicroProgram mp;
  mp.num_temps = 3;
  mp.ops.push_back(mo_const(0, 1));
  mp.ops.push_back(mo_const(1, 0));
  mp.ops.push_back(mo_bin(BinOp::kDiv, 2, 0, 1));
  optimize_microops(mp);
  ASSERT_FALSE(mp.empty());
  ArenaHarness h("s = 1;");
  ProcessorState state(*h.model);
  PipelineControl control;
  std::vector<std::int64_t> temps;
  EXPECT_THROW(run_microops(mp, state, control, temps), SimError);
}

TEST(MicroEdge, PeepholeFoldsConstantsAndCompactsTemps) {
  // A chain of local copies lowers to redundant movs the specializer cannot
  // see; the peephole must forward them, drop the dead movs and shrink the
  // temp scratch.
  ArenaHarness h(R"(
    R[0] = 5;
    int32 u = R[0];
    int32 v = u;
    s = v;
    R[1] = 1 + 0;
  )");
  MicroProgram mp = h.lower(0, 0, /*optimize=*/false);
  MicroProgram opt = mp;
  optimize_microops(opt);
  EXPECT_LT(opt.ops.size(), mp.ops.size())
      << "before:\n" << microops_to_string(mp) << "after:\n"
      << microops_to_string(opt);
  EXPECT_LT(opt.num_temps, mp.num_temps);

  ProcessorState state(*h.model);
  PipelineControl control;
  std::vector<std::int64_t> temps;
  run_microops(opt, state, control, temps);
  EXPECT_EQ(state.dump_nonzero(), "R[0] = 5\nR[1] = 1\ns = 5\n");
}

TEST(MicroEdge, PeepholeKeepsControlIntrinsics) {
  ArenaHarness h("stall(3); flush(); halt();");
  const MicroProgram mp = h.lower(0, 0);
  ProcessorState state(*h.model);
  PipelineControl control;
  std::vector<std::int64_t> temps;
  run_microops(mp, state, control, temps);
  EXPECT_TRUE(control.flush);
  EXPECT_TRUE(control.halt);
  EXPECT_EQ(control.stall_cycles, 3);
}

TEST(MicroEdge, IntrinsicArityLoweringAndFolding) {
  // Mixed arity-1 (abs) and arity-2 (sext/min) intrinsics with constant
  // and run-time arguments, through the full lower + optimize + exec path.
  ArenaHarness h(R"(
    R[0] = a;
    s = abs(0 - R[0]) + sext(R[0], 4) + min(R[0], 9) + abs(0 - 7);
  )");
  for (const std::uint8_t a : {std::uint8_t{3}, std::uint8_t{200}}) {
    const MicroProgram mp = h.lower(a, 0);
    ProcessorState micro_state(*h.model);
    PipelineControl control;
    std::vector<std::int64_t> temps;
    run_microops(mp, micro_state, control, temps);

    std::vector<std::int64_t> words = {static_cast<std::int64_t>(
        static_cast<unsigned>(a) << 8)};
    DecodedPacket packet = h.decoder->decode_packet(words, 0);
    PacketSchedule schedule = h.specializer->schedule_packet(packet);
    ProcessorState tree_state(*h.model);
    PipelineControl tree_control;
    Evaluator eval(tree_state, tree_control);
    eval.exec_flat(schedule.stage_programs[0].stmts,
                   schedule.stage_programs[0].num_locals);
    EXPECT_TRUE(tree_state == micro_state)
        << tree_state.dump_nonzero() << "\nvs\n"
        << micro_state.dump_nonzero();
  }
}

}  // namespace
}  // namespace lisasim
