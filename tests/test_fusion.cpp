// Superinstruction-fusion tests: disassembly round-trips for every fused
// micro-op kind, constant-pool edge cases, the soundness fences (no fusion
// across a branch target, no folded division by a constant zero), and
// end-to-end equivalence of hand-built programs before and after fusion.
#include <gtest/gtest.h>

#include "behavior/fuse.hpp"
#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"
#include "model/sema.hpp"

namespace lisasim {
namespace {

constexpr const char* kModel = R"(
  RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int32 R[8];
    MEMORY int32 m[32];
    int64 s;
    int64 u;
    PIPELINE pipe = { EX; };
  }
  FETCH { WORD 16; MEMORY m; }
  OPERATION instruction IN pipe.EX {
    DECLARE { LABEL a, b; }
    CODING { a=0bx[8] b=0bx[8] }
    BEHAVIOR { s = a; }
  }
)";

struct FusionHarness {
  std::unique_ptr<Model> model;
  ResourceId s, u, m, r;

  FusionHarness() {
    model = compile_model_source_or_throw(kModel, "fusion-test");
    s = model->resource_by_name("s")->id;
    u = model->resource_by_name("u")->id;
    m = model->resource_by_name("m")->id;
    r = model->resource_by_name("R")->id;
  }

  /// Execute `program` on a fresh state (s = 7, u = 9, m[3] = 40) and
  /// return the nonzero-state dump.
  std::string run(const MicroProgram& program) {
    ProcessorState state(*model);
    state.write_scalar(s, 7);
    state.write_scalar(u, 9);
    state.write(m, 3, 40);
    PipelineControl control;
    std::vector<std::int64_t> temps;
    run_microops(program, state, control, temps);
    return state.dump_nonzero();
  }

  /// Fuse a copy of `program`; expect identical behavior, then hand the
  /// fused program back for structural checks.
  MicroProgram fuse_and_check(const MicroProgram& program) {
    MicroProgram fused = program;
    fuse_microops(fused);
    EXPECT_EQ(run(program), run(fused))
        << "unfused:\n" << microops_to_string(program) << "fused:\n"
        << microops_to_string(fused);
    return fused;
  }

  static int count_kind(const MicroProgram& program, MKind kind) {
    int n = 0;
    for (const MicroOp& op : program.ops) n += op.kind == kind;
    return n;
  }
};

// -- disassembly round-trips ---------------------------------------------

TEST(FusionToString, EveryFusedKindRendersDistinctly) {
  // One op of every fused kind; the disassembly must render each with its
  // dedicated syntax (no two kinds may collapse into the same text and no
  // kind may fall through to an empty line).
  const struct {
    MicroOp op;
    const char* expect;
  } rows[] = {
      {mo_pool(0, 1), "t0 = pool[1]"},
      {mo_bin_imm(BinOp::kAdd, 1, 0, 5), "t1 = t0 + 5"},
      {mo_bin_imm_r(BinOp::kSub, 1, 5, 0), "t1 = 5 - t0"},
      {mo_write_bin(BinOp::kMul, 3, 0, 1), "scal res3 = t0 * t1"},
      {mo_br_bin(BinOp::kEq, 0, 1, 9), "brzero (t0 == t1) -> 9"},
      {mo_br_bin_imm(BinOp::kNe, 0, 4, 9), "brzero (t0 != 4) -> 9"},
      {mo_read_elem_c(0, 2, 6), "t0 = res2[6]"},
      {mo_write_elem_c(2, 6, 0), "res2[6] = t0"},
      {mo_read_elem_off(0, 2, 1, 4), "t0 = res2[t1 + 4]"},
      {mo_write_elem_off(2, 1, 4, 0), "res2[t1 + 4] = t0"},
      {mo_write_scal_imm(3, 42), "scal res3 = 42"},
      {mo_mov_scal(3, 4), "scal res3 = scal res4"},
      {mo_br_scal_zero(3, 9), "brzero scal res3 -> 9"},
      {mo_intr_imm(Intrinsic::kSext, 1, 0, 8), "t1 = sext(t0, 8)"},
      {mo_mov_scal_elem(3, 2, 6), "scal res3 = res2[6]"},
      {mo_mov_elem_scal(2, 6, 3), "res2[6] = scal res3"},
      {mo_read_elem_scal(0, 2, 3), "t0 = res2[scal res3]"},
  };
  for (const auto& row : rows) {
    const std::string text = microops_to_string(&row.op, 1, nullptr);
    EXPECT_NE(text.find(row.expect), std::string::npos)
        << "expected \"" << row.expect << "\" in \"" << text << "\"";
  }
}

// -- constant-pool edge cases --------------------------------------------

TEST(FusionPool, WideImmediateRoundTripsThroughPool) {
  FusionHarness h;
  // 0x1234'5678'9abc does not fit the 32-bit inline immediate; it must
  // survive the pool round trip exactly.
  const std::int64_t wide = 0x123456789abcLL;
  MicroProgram p;
  p.num_temps = 1;
  p.ops = {mo_pool(0, p.add_pool(wide)), mo_write_scal(h.s, 0)};
  validate_microops(p);
  EXPECT_NE(h.run(p).find("s = " + std::to_string(wide)),
            std::string::npos);
  // Interning deduplicates: a second request returns the same slot.
  EXPECT_EQ(p.add_pool(wide), 0);
  EXPECT_EQ(p.pool.size(), 1u);
}

TEST(FusionPool, EmptyPoolIsValidAndOutOfRangeIndexIsNot) {
  FusionHarness h;
  MicroProgram no_pool;
  no_pool.num_temps = 1;
  no_pool.ops = {mo_const(0, 1), mo_write_scal(h.s, 0)};
  validate_microops(no_pool);  // empty pool, no kConstPool: fine
  EXPECT_NE(h.run(no_pool).find("s = 1"), std::string::npos);

  MicroProgram bad = no_pool;
  bad.ops[0] = mo_pool(0, 0);  // pool index 0 against an empty pool
  EXPECT_THROW(validate_microops(bad), SimError);
}

// -- soundness fences ----------------------------------------------------

TEST(FusionFences, NeverFusesAcrossABranchTarget) {
  FusionHarness h;
  // A branch targets the consumer: a path entering there would skip the
  // producer, so const->bin must NOT fuse. The same pair with the target
  // moved past the consumer is the positive control.
  MicroProgram blocked;
  blocked.num_temps = 3;
  blocked.ops = {
      mo_const(0, 5),
      mo_brzero(2, 2),  // target == consumer index
      mo_bin(BinOp::kAdd, 1, 0, 0),
      mo_write_scal(h.s, 1),
  };
  const MicroProgram fused_blocked = h.fuse_and_check(blocked);
  EXPECT_EQ(FusionHarness::count_kind(fused_blocked, MKind::kBinImm), 0)
      << microops_to_string(fused_blocked);

  MicroProgram clear = blocked;
  clear.ops[1] = mo_brzero(2, 4);  // past the consumer: no target between
  const MicroProgram fused_clear = h.fuse_and_check(clear);
  EXPECT_GE(FusionHarness::count_kind(fused_clear, MKind::kBinImm), 1)
      << microops_to_string(fused_clear);
}

TEST(FusionFences, DivisionByConstantZeroIsNeverFolded) {
  FusionHarness h;
  for (const BinOp bop : {BinOp::kDiv, BinOp::kRem}) {
    MicroProgram p;
    p.num_temps = 3;
    p.ops = {
        mo_const(0, 0),               // divisor: constant zero
        mo_bin(bop, 1, 2, 0),         // t1 = t2 <op> 0 -- must still throw
        mo_write_scal(h.s, 1),
    };
    MicroProgram fused = p;
    fuse_microops(fused);
    EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kBinImm), 0)
        << microops_to_string(fused);
    EXPECT_THROW(h.run(fused), SimError);

    // The full optimizer (const-fold + DCE + fusion) must preserve the
    // throw as well.
    MicroProgram opt = p;
    EXPECT_NO_THROW(optimize_microops(opt));
    EXPECT_THROW(h.run(opt), SimError);
  }
}

TEST(FusionFences, ValidationRejectsFusedZeroDivisors) {
  MicroProgram p;
  p.num_temps = 2;
  p.ops = {mo_bin_imm(BinOp::kDiv, 0, 1, 0)};
  EXPECT_THROW(validate_microops(p), SimError);
  p.ops = {mo_br_bin(BinOp::kDiv, 0, 1, 1)};
  EXPECT_THROW(validate_microops(p), SimError);
  // kIntrImm encodes the immediate as the second operand, so only
  // arity-2 intrinsics are legal.
  p.ops = {mo_intr_imm(Intrinsic::kAbs, 0, 1, 8)};
  EXPECT_THROW(validate_microops(p), SimError);
}

// -- end-to-end fusion of the scalar/element patterns --------------------

TEST(FusionPatterns, ConstToWriteScalBecomesWriteScalImm) {
  FusionHarness h;
  MicroProgram p;
  p.num_temps = 1;
  p.ops = {mo_const(0, 123), mo_write_scal(h.s, 0)};
  const MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kWriteScalImm), 1);
  EXPECT_EQ(fused.ops.size(), 1u);  // the producer died with its only use
}

TEST(FusionPatterns, ScalarToScalarBecomesMovScal) {
  FusionHarness h;
  MicroProgram p;
  p.num_temps = 1;
  p.ops = {mo_read_scal(0, h.s), mo_write_scal(h.u, 0)};
  const MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kMovScal), 1);
}

TEST(FusionPatterns, MovScalBlockedByInterveningWrite) {
  FusionHarness h;
  // s is rewritten between the pair; kMovScal would re-read the new
  // value, so the fuser must keep the temp. u must end up 7 (the value
  // of s at the producer), not 55.
  MicroProgram p;
  p.num_temps = 1;
  p.ops = {
      mo_read_scal(0, h.s),
      mo_write_scal_imm(h.s, 55),
      mo_write_scal(h.u, 0),
  };
  const MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kMovScal), 0)
      << microops_to_string(fused);
  EXPECT_NE(h.run(fused).find("u = 7"), std::string::npos);
}

TEST(FusionPatterns, ScalarBranchBecomesBrScalZero) {
  FusionHarness h;
  MicroProgram p;
  p.num_temps = 1;
  p.ops = {
      mo_read_scal(0, h.s),
      mo_brzero(0, 3),
      mo_write_scal_imm(h.u, 1),
  };
  const MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kBrScalZero), 1)
      << microops_to_string(fused);
}

TEST(FusionPatterns, ConstIntrinsicOperandBecomesIntrImm) {
  FusionHarness h;
  MicroProgram p;
  p.num_temps = 3;
  p.ops = {
      mo_const(0, 200),
      mo_const(1, 8),
      mo_intr(Intrinsic::kSext, 2, 0, 1),  // sext(200, 8) = -56
      mo_write_scal(h.s, 2),
  };
  MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kIntrImm), 1)
      << microops_to_string(fused);
  EXPECT_NE(h.run(fused).find("s = -56"), std::string::npos);
}

TEST(FusionPatterns, ElementMovesAndScalarIndexedReads) {
  FusionHarness h;
  // m[3] holds 40. scal = elem, elem = scal, and t = arr[scal] forms.
  MicroProgram p;
  p.num_temps = 2;
  p.ops = {
      mo_read_elem_c(0, h.m, 3),
      mo_write_scal(h.u, 0),      // -> kMovScalElem (adjacent)
      mo_read_scal(1, h.u),
      mo_write_elem_c(h.m, 5, 1),  // -> kMovElemScal
  };
  const MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kMovScalElem), 1)
      << microops_to_string(fused);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kMovElemScal), 1)
      << microops_to_string(fused);

  MicroProgram q;
  q.num_temps = 2;
  q.ops = {
      mo_read_scal(0, h.s),      // s = 7
      mo_read_elem(1, h.m, 0),   // t1 = m[7] -> kReadElemScal
      mo_write_scal(h.u, 1),
  };
  const MicroProgram fused_q = h.fuse_and_check(q);
  EXPECT_EQ(FusionHarness::count_kind(fused_q, MKind::kReadElemScal), 1)
      << microops_to_string(fused_q);
}

TEST(FusionPatterns, MovScalElemRequiresAdjacency)
{
  FusionHarness h;
  // A live op between the element read (which can throw) and the scalar
  // write moves the throw point if fused -- the fuser must refuse.
  MicroProgram p;
  p.num_temps = 2;
  p.ops = {
      mo_read_elem_c(0, h.m, 3),
      mo_write_scal_imm(h.s, 1),  // live op between the pair
      mo_write_scal(h.u, 0),
  };
  const MicroProgram fused = h.fuse_and_check(p);
  EXPECT_EQ(FusionHarness::count_kind(fused, MKind::kMovScalElem), 0)
      << microops_to_string(fused);
}

}  // namespace
}  // namespace lisasim
