// The simulation service's contract: every session a SessionManager
// retires — at any level, under any guard policy, through any amount of
// quantum slicing, eviction and rehydration — reports exactly the
// RunResult and final architectural state one standalone simulator run of
// the same program would produce. Plus the sharing story those sessions
// ride on (K sessions, one table compile) and the session checkpoint
// format that carries them across managers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/differ.hpp"
#include "serve/session_io.hpp"
#include "serve/session_manager.hpp"
#include "sim_test_util.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& c62x() {
  static TestTarget t(targets::c62x_model_source(), "c62x");
  return t;
}

std::shared_ptr<const LoadedProgram> shared_fir(int samples = 24) {
  return std::make_shared<const LoadedProgram>(
      c62x().assemble(workloads::make_fir(8, samples).asm_source));
}

/// What one uninterrupted run at `level` produces (the serve reference).
struct Standalone {
  RunResult result;
  std::string state_dump;
  bool recoverable_stop = false;
};

Standalone standalone_run(const Model& model, const LoadedProgram& program,
                          SimLevel level, GuardPolicy guard,
                          const RunLimits& limits = {}) {
  Standalone out;
  if (level == SimLevel::kInterpretive) {
    InterpSimulator sim(model);
    sim.load(program);
    try {
      out.result = sim.run(limits);
    } catch (const SimError& e) {
      if (!e.recoverable()) throw;
      out.recoverable_stop = true;
    }
    out.state_dump = sim.state().dump_nonzero();
    return out;
  }
  if (level == SimLevel::kDecodeCached) {
    CachedInterpSimulator sim(model);
    sim.set_guard_policy(guard);
    sim.load(program);
    try {
      out.result = sim.run(limits.max_cycles);
    } catch (const SimError& e) {
      if (!e.recoverable()) throw;
      out.recoverable_stop = true;
    }
    out.state_dump = sim.state().dump_nonzero();
    return out;
  }
  CompiledSimulator sim(model, level);
  sim.set_guard_policy(guard);
  sim.load(program);
  try {
    out.result = sim.run(limits);
  } catch (const SimError& e) {
    if (!e.recoverable()) throw;
    out.recoverable_stop = true;
  }
  out.state_dump = sim.state().dump_nonzero();
  return out;
}

SessionSpec spec_of(std::string name,
                    const std::shared_ptr<const LoadedProgram>& program,
                    SimLevel level, GuardPolicy guard = GuardPolicy::kOff) {
  SessionSpec spec;
  spec.name = std::move(name);
  spec.model = c62x().model.get();
  spec.program = program;
  spec.level = level;
  spec.guard = guard;
  return spec;
}

/// "<stem><i>" via append — the obvious `stem + std::to_string(i)` trips
/// GCC 12's -Wrestrict false positive on operator+(const char*, string&&).
std::string numbered(const char* stem, int i) {
  std::string name = stem;
  name += std::to_string(i);
  return name;
}

std::filesystem::path fresh_dir(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("lisasim-serve-") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------- differential core --

TEST(Serve, FleetMatchesStandaloneAndCompilesOnce) {
  const auto program = shared_fir();
  const Standalone want = standalone_run(
      *c62x().model, *program, SimLevel::kCompiledStatic, GuardPolicy::kOff);

  ServeConfig cfg;
  cfg.threads = 4;
  cfg.quantum_cycles = 512;  // force many slices per session
  SessionManager manager(cfg);
  for (int i = 0; i < 16; ++i)
    manager.add_session(spec_of(numbered("s", i), program,
                                SimLevel::kCompiledStatic));
  manager.run_all();

  for (const SessionReport& r : manager.reports()) {
    EXPECT_EQ(r.outcome, SessionOutcome::kHalted) << r.name;
    EXPECT_EQ(r.result, want.result) << r.name;
    EXPECT_EQ(r.state_dump, want.state_dump) << r.name;
    EXPECT_GT(r.quanta, 1u) << r.name;
  }
  // The sharing contract: 16 sessions of one (model, program, level) cost
  // exactly one simulation-compiler run; every other session's request
  // lands on the hit path (after coalescing on the in-flight compile if
  // it arrived while the election was still out).
  const SimTableCache::Stats stats = manager.cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 15u);

  const ServeMetrics m = manager.metrics();
  EXPECT_EQ(m.sessions, 16u);
  EXPECT_EQ(m.finished, 16u);
  EXPECT_EQ(m.errors, 0u);
  EXPECT_EQ(m.total_cycles, want.result.cycles * 16);
  EXPECT_GE(m.p99_step_ns, m.p50_step_ns);
}

TEST(Serve, EveryLevelMatchesTheInterpOracle) {
  const auto program = shared_fir(16);
  const Standalone oracle = standalone_run(
      *c62x().model, *program, SimLevel::kInterpretive, GuardPolicy::kOff);

  const SimLevel levels[] = {SimLevel::kInterpretive, SimLevel::kDecodeCached,
                             SimLevel::kCompiledDynamic,
                             SimLevel::kCompiledStatic, SimLevel::kTrace};
  ServeConfig cfg;
  cfg.threads = 2;
  cfg.quantum_cycles = 777;  // odd on purpose: slices land mid-packet
  SessionManager manager(cfg);
  for (SimLevel level : levels)
    manager.add_session(spec_of(sim_level_name(level), program, level));
  manager.run_all();

  for (const SessionReport& r : manager.reports()) {
    EXPECT_EQ(r.outcome, SessionOutcome::kHalted) << r.name;
    EXPECT_EQ(r.result, oracle.result) << r.name;
    EXPECT_EQ(r.state_dump, oracle.state_dump) << r.name;
  }
}

TEST(Serve, SmcSessionsHonorBothGuardPolicies) {
  const auto program = std::make_shared<const LoadedProgram>(
      c62x().assemble(workloads::make_smc_c62x().asm_source));

  for (GuardPolicy guard : {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    SCOPED_TRACE(guard_policy_name(guard));
    const Standalone want = standalone_run(
        *c62x().model, *program, SimLevel::kCompiledStatic, guard);

    ServeConfig cfg;
    cfg.threads = 2;
    cfg.quantum_cycles = 64;  // slice straight through the self-patch
    SessionManager manager(cfg);
    for (SimLevel level : {SimLevel::kDecodeCached, SimLevel::kCompiledDynamic,
                           SimLevel::kCompiledStatic})
      manager.add_session(spec_of(sim_level_name(level), program, level, guard));
    manager.run_all();

    for (const SessionReport& r : manager.reports()) {
      EXPECT_EQ(r.outcome, SessionOutcome::kHalted) << r.name;
      EXPECT_EQ(r.result, want.result) << r.name;
      EXPECT_EQ(r.state_dump, want.state_dump) << r.name;
    }
  }
}

// --------------------------------------------------- limits/watchdog --

TEST(Serve, WholeSessionLimitMatchesStandaloneLimitRun) {
  const auto program = shared_fir();
  RunLimits limits;
  limits.max_cycles = 1000;  // well before the halt
  const Standalone want =
      standalone_run(*c62x().model, *program, SimLevel::kCompiledStatic,
                     GuardPolicy::kOff, limits);
  ASSERT_FALSE(want.result.halted);

  ServeConfig cfg;
  cfg.quantum_cycles = 96;  // 1000 is not a multiple: the last slice is short
  SessionManager manager(cfg);
  SessionSpec spec = spec_of("limited", program, SimLevel::kCompiledStatic);
  spec.limits = limits;
  const std::size_t id = manager.add_session(std::move(spec));
  manager.run_all();

  const SessionReport r = manager.report(id);
  EXPECT_EQ(r.outcome, SessionOutcome::kLimit);
  EXPECT_EQ(r.result, want.result);
  EXPECT_EQ(r.result.cycles, 1000u);
  EXPECT_EQ(r.state_dump, want.state_dump);
}

TEST(Serve, WatchdogFiresAtTheSameAbsoluteCycleAsStandalone) {
  const auto program = shared_fir();
  RunLimits limits;
  limits.watchdog_cycles = 700;
  const Standalone want =
      standalone_run(*c62x().model, *program, SimLevel::kCompiledStatic,
                     GuardPolicy::kOff, limits);
  ASSERT_TRUE(want.recoverable_stop);

  ServeConfig cfg;
  cfg.quantum_cycles = 128;  // the watchdog is rebased into each slice
  SessionManager manager(cfg);
  SessionSpec spec = spec_of("watchdogged", program, SimLevel::kCompiledStatic);
  spec.limits = limits;
  const std::size_t id = manager.add_session(std::move(spec));
  manager.run_all();

  const SessionReport r = manager.report(id);
  EXPECT_EQ(r.outcome, SessionOutcome::kError);
  EXPECT_TRUE(r.recoverable);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.state_dump, want.state_dump)
      << "watchdog must stop at the same absolute cycle";
}

// ------------------------------------------------ evict / rehydrate --

TEST(Serve, EvictionRehydrationKeepsSessionsBitIdentical) {
  const auto program = shared_fir();
  const Standalone want = standalone_run(
      *c62x().model, *program, SimLevel::kCompiledStatic, GuardPolicy::kOff);
  const std::filesystem::path dir = fresh_dir("evict");

  ServeConfig cfg;
  cfg.threads = 2;
  cfg.quantum_cycles = 256;
  cfg.max_resident = 2;  // 6 sessions through 2 slots: constant churn
  cfg.evict_dir = dir.string();
  SessionManager manager(cfg);
  for (int i = 0; i < 6; ++i)
    manager.add_session(spec_of(numbered("churn", i), program,
                                SimLevel::kCompiledStatic));
  manager.run_all();

  std::uint64_t evictions = 0;
  for (const SessionReport& r : manager.reports()) {
    EXPECT_EQ(r.outcome, SessionOutcome::kHalted) << r.name;
    EXPECT_EQ(r.result, want.result) << r.name;
    EXPECT_EQ(r.state_dump, want.state_dump) << r.name;
    evictions += r.evictions;
    EXPECT_EQ(r.evictions, r.rehydrations) << r.name;
  }
  const ServeMetrics metrics = manager.metrics();
  EXPECT_EQ(metrics.evict_failures, 0u)
      << "eviction serialize/write errors ran sessions over the cap";
  EXPECT_GT(evictions, 0u)
      << "cap of 2 with 6 sessions must evict (manager counted "
      << metrics.evictions << " evictions, " << metrics.evict_failures
      << " failed attempts over " << metrics.quanta << " quanta)";
  std::filesystem::remove_all(dir);
}

TEST(Serve, GuardedSmcSessionSurvivesEviction) {
  const auto program = std::make_shared<const LoadedProgram>(
      c62x().assemble(workloads::make_smc_c62x().asm_source));
  const std::filesystem::path dir = fresh_dir("evict-smc");

  for (GuardPolicy guard : {GuardPolicy::kRecompile, GuardPolicy::kFallback}) {
    SCOPED_TRACE(guard_policy_name(guard));
    const Standalone want = standalone_run(
        *c62x().model, *program, SimLevel::kCompiledStatic, guard);

    ServeConfig cfg;
    cfg.quantum_cycles = 32;
    cfg.max_resident = 1;
    cfg.evict_dir = dir.string();
    SessionManager manager(cfg);
    const std::size_t a = manager.add_session(
        spec_of("smc-a", program, SimLevel::kCompiledStatic, guard));
    const std::size_t b = manager.add_session(
        spec_of("smc-b", program, SimLevel::kCompiledStatic, guard));
    manager.run_all();

    for (std::size_t id : {a, b}) {
      const SessionReport r = manager.report(id);
      EXPECT_EQ(r.outcome, SessionOutcome::kHalted) << r.name;
      EXPECT_EQ(r.result, want.result) << r.name;
      EXPECT_EQ(r.state_dump, want.state_dump) << r.name;
      EXPECT_GT(r.rehydrations, 0u)
          << "cap of 1 with 2 sessions must round-trip " << r.name
          << " through its checkpoint, patched text included";
    }
  }
  std::filesystem::remove_all(dir);
}

// ----------------------------------------- checkpoint / cross-manager --

TEST(Serve, CheckpointRestoreAcrossManagersIsSeamless) {
  const auto program = shared_fir();
  const Standalone want = standalone_run(
      *c62x().model, *program, SimLevel::kCompiledStatic, GuardPolicy::kOff);
  const std::filesystem::path dir = fresh_dir("handoff");
  const std::string ckpt = (dir / "mid.ckpt").string();

  std::uint64_t cycles_before = 0;
  {
    SessionManager first;
    const std::size_t id =
        first.add_session(spec_of("mid", program, SimLevel::kCompiledStatic));
    const RunResult partial = first.run_session(id, 900);
    EXPECT_EQ(partial.cycles, 900u);
    cycles_before = first.report(id).result.cycles;
    first.checkpoint_session(id, ckpt);
  }  // first manager (and its cache, sims) fully gone

  SessionManager second;
  const std::size_t id = second.add_session_from_checkpoint(
      spec_of("mid", program, SimLevel::kCompiledStatic), ckpt);
  second.run_all();

  const SessionReport r = second.report(id);
  EXPECT_EQ(cycles_before, 900u);
  EXPECT_EQ(r.outcome, SessionOutcome::kHalted);
  EXPECT_EQ(r.result, want.result) << "carried counters + resumed run must "
                                      "equal one uninterrupted run";
  EXPECT_EQ(r.state_dump, want.state_dump);
  std::filesystem::remove_all(dir);
}

TEST(Serve, CheckpointSpecMismatchIsRejected) {
  const auto program = shared_fir(16);
  const std::filesystem::path dir = fresh_dir("mismatch");
  const std::string ckpt = (dir / "static.ckpt").string();

  SessionManager manager;
  const std::size_t id =
      manager.add_session(spec_of("s", program, SimLevel::kCompiledStatic));
  manager.run_session(id, 200);
  manager.checkpoint_session(id, ckpt);

  SessionManager other;
  EXPECT_THROW(other.add_session_from_checkpoint(
                   spec_of("s", program, SimLevel::kCompiledDynamic), ckpt),
               SimError);
  EXPECT_THROW(other.add_session_from_checkpoint(
                   spec_of("s", program, SimLevel::kCompiledStatic,
                           GuardPolicy::kRecompile),
                   ckpt),
               SimError);
  std::filesystem::remove_all(dir);
}

TEST(SessionIo, RoundTripsAndRejectsMalformedInput) {
  SessionCheckpoint cp;
  cp.name = "weird \\ name\nwith newline";
  cp.target = "c62x";
  cp.level = SimLevel::kTrace;
  cp.guard = GuardPolicy::kFallback;
  cp.acc.cycles = 123;
  cp.acc.packets_retired = 45;
  cp.acc.slots_retired = 67;
  cp.acc.fetches = 89;
  cp.quanta = 7;
  cp.engine.state = {1, -2, 3};
  cp.engine.total_cycles = 123;

  const std::string text = serialize_session_checkpoint(cp);
  const SessionCheckpoint back = parse_session_checkpoint(text);
  EXPECT_EQ(back.name, cp.name);
  EXPECT_EQ(back.target, cp.target);
  EXPECT_EQ(back.level, cp.level);
  EXPECT_EQ(back.guard, cp.guard);
  EXPECT_EQ(back.acc, cp.acc);
  EXPECT_EQ(back.quanta, cp.quanta);

  for (const char* bad :
       {"", "not-a-checkpoint", "lisasim-serve-session 2\n",
        "lisasim-serve-session 1\nname x\n"}) {
    try {
      parse_session_checkpoint(bad);
      FAIL() << "accepted malformed input: " << bad;
    } catch (const SimError& e) {
      EXPECT_TRUE(e.recoverable()) << bad;
    }
  }
}

// ------------------------------------------------- interactive seams --

TEST(Serve, RunSessionAndStateMirrorAStandaloneStep) {
  const auto program = shared_fir(16);
  InterpSimulator reference(*c62x().model);
  reference.load(*program);
  reference.run(500);

  SessionManager manager;
  const std::size_t id =
      manager.add_session(spec_of("stepper", program, SimLevel::kInterpretive));
  const RunResult d1 = manager.run_session(id, 300);
  const RunResult d2 = manager.run_session(id, 200);
  EXPECT_EQ(d1.cycles, 300u);
  EXPECT_EQ(d2.cycles, 200u);
  EXPECT_EQ(manager.session_state(id), reference.state().dump_nonzero());

  // Evicting between interactive steps must not change anything either.
  const std::filesystem::path dir = fresh_dir("interactive");
  // (session_state above may have been the last user; force the eviction
  // path through the public seam.)
  SessionManager manager2(ServeConfig{.max_resident = 1,
                                      .evict_dir = dir.string()});
  const std::size_t id2 = manager2.add_session(
      spec_of("stepper2", program, SimLevel::kInterpretive));
  manager2.run_session(id2, 300);
  manager2.evict_session(id2);
  manager2.run_session(id2, 200);
  EXPECT_EQ(manager2.session_state(id2), reference.state().dump_nonzero());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- fuzz sweep --

TEST(ServeFuzz, SweepAgreesWithOracleOnGeneratedPrograms) {
  TestTarget tiny(targets::tinydsp_model_source(), "tinydsp");
  fuzz::DifferentialFuzzer fuzzer(*tiny.model);
  fuzz::FuzzOptions opts;
  opts.serve_sessions = 3;
  opts.minimize = false;
  opts.repro_dir.clear();
  fuzz::FuzzStats stats;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto divergence = fuzzer.run_seed(seed, opts, stats);
    EXPECT_FALSE(divergence.has_value())
        << divergence->level << ": " << divergence->description;
  }
  EXPECT_GT(stats.programs, 0u);
}

}  // namespace
}  // namespace lisasim
