// Front-end tests: lexer, parser, semantic analysis and the model data
// base (dump/reload round trip) on hand-written fragments and on the
// shipped target models.
#include <gtest/gtest.h>

#include "lisa/lexer.hpp"
#include "lisa/parser.hpp"
#include "model/database.hpp"
#include "model/sema.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

std::vector<Token> lex(std::string_view src) {
  DiagnosticEngine diags;
  Lexer lexer(src, "test", diags);
  auto tokens = lexer.lex_all();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return tokens;
}

TEST(Lexer, Keywords) {
  const auto toks = lex("OPERATION RESOURCE if else IF ELSE");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, Tok::kKwOperation);
  EXPECT_EQ(toks[1].kind, Tok::kKwResource);
  EXPECT_EQ(toks[2].kind, Tok::kKwLowerIf);
  EXPECT_EQ(toks[3].kind, Tok::kKwLowerElse);
  EXPECT_EQ(toks[4].kind, Tok::kKwIf);
  EXPECT_EQ(toks[5].kind, Tok::kKwElse);
}

TEST(Lexer, BitLiterals) {
  const auto toks = lex("0b0101 0bx[5] 0b1");
  EXPECT_EQ(toks[0].kind, Tok::kBits);
  EXPECT_EQ(toks[0].value, 5);
  EXPECT_EQ(toks[0].width, 4u);
  EXPECT_EQ(toks[1].kind, Tok::kFieldPat);
  EXPECT_EQ(toks[1].width, 5u);
  EXPECT_EQ(toks[2].kind, Tok::kBits);
  EXPECT_EQ(toks[2].width, 1u);
}

TEST(Lexer, Numbers) {
  const auto toks = lex("42 0x2A 0");
  EXPECT_EQ(toks[0].value, 42);
  EXPECT_EQ(toks[1].value, 42);
  EXPECT_EQ(toks[2].value, 0);
}

TEST(Lexer, OperatorsAndComments) {
  const auto toks = lex("a << b >> c && d || e /* comment */ != f // end");
  EXPECT_EQ(toks[1].kind, Tok::kShl);
  EXPECT_EQ(toks[3].kind, Tok::kShr);
  EXPECT_EQ(toks[5].kind, Tok::kAmpAmp);
  EXPECT_EQ(toks[7].kind, Tok::kPipePipe);
  EXPECT_EQ(toks[9].kind, Tok::kNe);
}

TEST(Lexer, StringsWithEscapes) {
  const auto toks = lex(R"("AB \" \\ C")");
  EXPECT_EQ(toks[0].kind, Tok::kString);
  EXPECT_EQ(toks[0].text, "AB \" \\ C");
}

TEST(Lexer, ReportsUnterminatedString) {
  DiagnosticEngine diags;
  Lexer lexer("\"abc", "test", diags);
  lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, ResourceSection) {
  DiagnosticEngine diags;
  const auto ast = parse_model_source(R"(
    MODEL demo;
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      REGISTER int32 R[16];
      MEMORY int32 mem[256];
      int32 acc;
      PIPELINE pipe = { IF; ID; EX; WB };
    }
  )",
                                      "test", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_EQ(ast.name, "demo");
  ASSERT_EQ(ast.resources.size(), 4u);
  EXPECT_EQ(ast.resources[0].kind, ast::ResourceKind::kProgramCounter);
  EXPECT_EQ(ast.resources[1].kind, ast::ResourceKind::kRegisterFile);
  EXPECT_EQ(ast.resources[1].size, 16u);
  EXPECT_EQ(ast.resources[2].kind, ast::ResourceKind::kMemory);
  EXPECT_EQ(ast.resources[3].kind, ast::ResourceKind::kScalar);
  ASSERT_EQ(ast.pipelines.size(), 1u);
  EXPECT_EQ(ast.pipelines[0].stages.size(), 4u);
}

TEST(Parser, OperationSections) {
  DiagnosticEngine diags;
  const auto ast = parse_model_source(R"(
    OPERATION foo IN pipe.EX {
      DECLARE { GROUP g = { a || b }; LABEL x, y; REFERENCE m; INSTANCE k = a; }
      CODING { 0b01 x=0bx[4] g }
      SYNTAX { "FOO " x ", " g }
      BEHAVIOR {
        int32 t = x + 1;
        if (t > 3) { acc = t; } else { acc = 0; }
      }
      ACTIVATION { k }
    }
  )",
                                      "test", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  ASSERT_EQ(ast.operations.size(), 1u);
  const auto& op = ast.operations[0];
  EXPECT_TRUE(op.has_stage);
  EXPECT_EQ(op.stage, "EX");
  EXPECT_EQ(op.declares.size(), 5u);  // g, x, y, m, k
  EXPECT_EQ(op.body.items.size(), 4u);
}

TEST(Parser, CodingTimeConditionals) {
  DiagnosticEngine diags;
  const auto ast = parse_model_source(R"(
    OPERATION add {
      DECLARE { REFERENCE mode; }
      IF (mode == short_mode) {
        BEHAVIOR { d = s1 + s2; }
      } ELSE {
        BEHAVIOR { d = s1 + s2 + carry; }
      }
      SWITCH (mode) {
        CASE short_mode: { EXPRESSION { 1 } }
        DEFAULT: { EXPRESSION { 2 } }
      }
    }
  )",
                                      "test", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_EQ(ast.operations[0].body.items.size(), 2u);
}

TEST(Parser, ExpressionPrecedence) {
  DiagnosticEngine diags;
  const auto ast = parse_model_source(
      "OPERATION t { BEHAVIOR { x = 1 + 2 * 3 << 1 == 14 && 1; } }", "test",
      diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  const auto& op = ast.operations[0];
  const auto& sec = std::get<ast::BehaviorSec>(op.body.items[0]);
  // ((1 + (2*3)) << 1) == 14) && 1
  EXPECT_EQ(sec.stmts[0]->value->to_string(),
            "((((1 + (2 * 3)) << 1) == 14) && 1)");
}

TEST(Parser, ReportsSyntaxError) {
  DiagnosticEngine diags;
  parse_model_source("OPERATION { }", "test", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, ResolvesTinyDsp) {
  DiagnosticEngine diags;
  auto model =
      compile_model_source(targets::tinydsp_model_source(), "tinydsp", diags);
  ASSERT_NE(model, nullptr) << diags.render();
  EXPECT_EQ(model->name, "tinydsp");
  EXPECT_EQ(model->pipeline.depth(), 4);
  ASSERT_GE(model->root, 0);
  EXPECT_EQ(model->op(model->root).coding_width, 32u);
  ASSERT_GE(model->pc, 0);
  ASSERT_GE(model->fetch_memory, 0);
  EXPECT_EQ(model->resource(model->fetch_memory).name, "pmem");
}

TEST(Sema, ResolvesC62x) {
  DiagnosticEngine diags;
  auto model =
      compile_model_source(targets::c62x_model_source(), "c62x", diags);
  ASSERT_NE(model, nullptr) << diags.render();
  EXPECT_EQ(model->pipeline.depth(), 11);
  EXPECT_EQ(model->fetch.packet_max, 8u);
  EXPECT_EQ(model->fetch.parallel_bit, 0);
  EXPECT_EQ(model->op(model->root).coding_width, 32u);
}

TEST(Sema, RejectsDuplicateResource) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "RESOURCE { int32 a; int32 a; }", "test", diags);
  EXPECT_EQ(model, nullptr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, RejectsUndeclaredIdentifier) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { BEHAVIOR { ghost = 1; } }", "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsWidthMismatchInGroup) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    OPERATION a { CODING { 0b00 } }
    OPERATION b { CODING { 0b000 } }
    OPERATION c {
      DECLARE { GROUP g = { a || b }; }
      CODING { g }
    }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsRootWidthMismatch) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    FETCH { WORD 32; }
    OPERATION instruction { CODING { 0b0101 } }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsIndexingScalar) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    RESOURCE { int32 acc; }
    OPERATION t { BEHAVIOR { acc[0] = 1; } }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsAssignToField) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    OPERATION t {
      DECLARE { LABEL f; }
      CODING { f=0bx[4] }
      BEHAVIOR { f = 1; }
    }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsUnknownIntrinsic) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "RESOURCE { int32 a; } OPERATION t { BEHAVIOR { a = frobnicate(1); } }",
      "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsIntrinsicArity) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "RESOURCE { int32 a; } OPERATION t { BEHAVIOR { a = sext(1); } }",
      "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsCodingInsideConditional) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    OPERATION t {
      DECLARE { LABEL f; }
      IF (f == 0) { CODING { 0b1 } }
    }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Database, TinyDspRoundTrip) {
  auto model = compile_model_source_or_throw(targets::tinydsp_model_source(),
                                             "tinydsp");
  const std::string dumped = dump_model(*model);
  DiagnosticEngine diags;
  auto reloaded = load_model(dumped, diags);
  ASSERT_NE(reloaded, nullptr) << diags.render() << "\n--- dump ---\n"
                               << dumped;
  // Fixed point: dumping the reloaded model reproduces the dump.
  EXPECT_EQ(dump_model(*reloaded), dumped);
  EXPECT_EQ(reloaded->operations.size(), model->operations.size());
  EXPECT_EQ(reloaded->resources.size(), model->resources.size());
}

TEST(Database, C62xRoundTrip) {
  auto model =
      compile_model_source_or_throw(targets::c62x_model_source(), "c62x");
  const std::string dumped = dump_model(*model);
  DiagnosticEngine diags;
  auto reloaded = load_model(dumped, diags);
  ASSERT_NE(reloaded, nullptr) << diags.render();
  EXPECT_EQ(dump_model(*reloaded), dumped);
}


TEST(Sema, RejectsUnknownPipelineStage) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    RESOURCE { PIPELINE pipe = { A; B; }; }
    OPERATION t IN pipe.C { BEHAVIOR { halt(); } }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsSecondPipeline) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "RESOURCE { PIPELINE a = { X; }; PIPELINE b = { Y; }; }", "test",
      diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsDuplicatePipelineStage) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "RESOURCE { PIPELINE p = { X; X; }; }", "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsDuplicateOperation) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { CODING { 0b1 } }\nOPERATION t { CODING { 0b0 } }",
      "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsUnknownGroupTarget) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { DECLARE { GROUP g = { ghost }; } CODING { g } }",
      "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsUnknownActivationTarget) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { ACTIVATION { ghost } }", "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsRecursiveCoding) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    OPERATION a {
      DECLARE { GROUP g = { a }; }
      CODING { 0b1 g }
    }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsCodingFieldWithoutLabel) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { CODING { f=0bx[4] } }", "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsDoubleBoundLabel) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { DECLARE { LABEL f; } CODING { f=0bx[4] f=0bx[4] } }",
      "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsMultipleCodingSections) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { CODING { 0b1 } CODING { 0b0 } }", "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsPacketWithoutParallelBit) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    RESOURCE { MEMORY uint32 m[8]; }
    FETCH { WORD 32; PACKET 4; MEMORY m; }
  )",
                                    "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsUnknownSyntaxReference) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "OPERATION t { CODING { 0b1 } SYNTAX { \"T \" ghost } }", "test",
      diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, RejectsMultiplePcResources) {
  DiagnosticEngine diags;
  auto model = compile_model_source(
      "RESOURCE { PROGRAM_COUNTER uint32 A; PROGRAM_COUNTER uint32 B; }",
      "test", diags);
  EXPECT_EQ(model, nullptr);
}

TEST(Sema, DefaultsFetchMemoryToUniqueMemory) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY uint32 only[8]; }
    FETCH { WORD 8; }
    OPERATION instruction { CODING { 0b11111111 } BEHAVIOR { halt(); } }
  )",
                                    "test", diags);
  ASSERT_NE(model, nullptr) << diags.render();
  EXPECT_EQ(model->resource(model->fetch_memory).name, "only");
}

TEST(Sema, AmbiguousFetchMemoryStaysUnset) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    RESOURCE { PROGRAM_COUNTER uint32 PC;
               MEMORY uint32 a[8]; MEMORY uint32 b[8]; }
  )",
                                    "test", diags);
  ASSERT_NE(model, nullptr) << diags.render();
  EXPECT_LT(model->fetch_memory, 0);
}

TEST(Sema, ImplicitInstanceFromActivation) {
  DiagnosticEngine diags;
  auto model = compile_model_source(R"(
    RESOURCE { int32 s; PIPELINE p = { A; B; }; }
    OPERATION child IN p.B { BEHAVIOR { s = 1; } }
    OPERATION t IN p.A {
      CODING { 0b1 }
      BEHAVIOR { s = 0; }
      ACTIVATION { child }
    }
  )",
                                    "test", diags);
  ASSERT_NE(model, nullptr) << diags.render();
  const Operation* t = model->operation_by_name("t");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->children.size(), 1u);
  EXPECT_EQ(t->children[0].name, "child");
  EXPECT_FALSE(t->children[0].in_coding);
}

TEST(Database, C54xRoundTrip) {
  auto model =
      compile_model_source_or_throw(targets::c54x_model_source(), "c54x");
  const std::string dumped = dump_model(*model);
  DiagnosticEngine diags;
  auto reloaded = load_model(dumped, diags);
  ASSERT_NE(reloaded, nullptr) << diags.render();
  EXPECT_EQ(dump_model(*reloaded), dumped);
}

TEST(Database, DumpIsHumanReadable) {
  auto model = compile_model_source_or_throw(targets::tinydsp_model_source(),
                                             "tinydsp");
  const std::string dumped = dump_model(*model);
  EXPECT_NE(dumped.find("MODEL tinydsp;"), std::string::npos);
  EXPECT_NE(dumped.find("PIPELINE pipe = { IF; ID; EX; WB };"),
            std::string::npos);
  EXPECT_NE(dumped.find("OPERATION add"), std::string::npos);
  EXPECT_NE(dumped.find("IF ((mode == short_mode))"), std::string::npos);
}

}  // namespace
}  // namespace lisasim
