// Behavior-evaluator unit tests: arithmetic semantics on the 64-bit
// domain, intrinsics, locals, run-time conditionals, operand delegation
// through EXPRESSION, upward REFERENCE resolution and error cases.
#include <gtest/gtest.h>

#include "behavior/eval.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"

namespace lisasim {
namespace {

/// Build a one-operation model whose instruction has two 8-bit fields `a`
/// and `b` and the given BEHAVIOR body; execute it on the word (a<<8)|b
/// and return the scalar resource `s`.
class EvalHarness {
 public:
  explicit EvalHarness(const std::string& behavior_body,
                       const std::string& extra_ops = "") {
    const std::string source = R"(
      RESOURCE {
        PROGRAM_COUNTER uint32 PC;
        REGISTER int32 R[8];
        MEMORY int32 m[32];
        int64 s;
        PIPELINE pipe = { EX; };
      }
      FETCH { WORD 16; MEMORY m; }
    )" + extra_ops + R"(
      OPERATION instruction {
        DECLARE { LABEL a, b; }
        CODING { a=0bx[8] b=0bx[8] }
        BEHAVIOR {
    )" + behavior_body + R"(
        }
      }
    )";
    model_ = compile_model_source_or_throw(source, "eval-test");
    decoder_ = std::make_unique<Decoder>(*model_);
    state_ = std::make_unique<ProcessorState>(*model_);
  }

  std::int64_t run(std::uint8_t a = 0, std::uint8_t b = 0) {
    const std::uint64_t word =
        (static_cast<std::uint64_t>(a) << 8) | b;
    DecodedNodePtr node = decoder_->decode(word);
    EXPECT_NE(node, nullptr);
    Evaluator eval(*state_, control_);
    eval.run_op(*node, nullptr);
    return state_->read(model_->resource_by_name("s")->id);
  }

  ProcessorState& state() { return *state_; }
  PipelineControl& control() { return control_; }
  const Model& model() const { return *model_; }

 private:
  std::unique_ptr<Model> model_;
  std::unique_ptr<Decoder> decoder_;
  std::unique_ptr<ProcessorState> state_;
  PipelineControl control_;
};

TEST(Eval, FieldsAreDecoded) {
  EvalHarness h("s = a * 100 + b;");
  EXPECT_EQ(h.run(3, 7), 307);
}

struct ArithCase {
  const char* expr;
  std::int64_t expected;
};

class EvalArith : public ::testing::TestWithParam<ArithCase> {};

TEST_P(EvalArith, Computes) {
  EvalHarness h(std::string("s = ") + GetParam().expr + ";");
  EXPECT_EQ(h.run(), GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Operators, EvalArith,
    ::testing::Values(
        ArithCase{"7 + 5", 12}, ArithCase{"7 - 9", -2},
        ArithCase{"6 * 7", 42}, ArithCase{"17 / 5", 3},
        ArithCase{"-17 / 5", -3}, ArithCase{"17 % 5", 2},
        ArithCase{"-17 % 5", -2}, ArithCase{"12 & 10", 8},
        ArithCase{"12 | 10", 14}, ArithCase{"12 ^ 10", 6},
        ArithCase{"3 << 4", 48}, ArithCase{"-64 >> 3", -8},
        ArithCase{"5 == 5", 1}, ArithCase{"5 == 6", 0},
        ArithCase{"5 != 6", 1}, ArithCase{"4 < 5", 1},
        ArithCase{"5 <= 5", 1}, ArithCase{"5 > 5", 0},
        ArithCase{"5 >= 5", 1}, ArithCase{"1 && 0", 0},
        ArithCase{"1 && 2", 1}, ArithCase{"0 || 3", 1},
        ArithCase{"0 || 0", 0}, ArithCase{"!3", 0}, ArithCase{"!0", 1},
        ArithCase{"~0", -1}, ArithCase{"-(5)", -5},
        ArithCase{"1 ? 11 : 22", 11}, ArithCase{"0 ? 11 : 22", 22},
        ArithCase{"2 + 3 * 4", 14}, ArithCase{"(2 + 3) * 4", 20}));

struct IntrinsicCase {
  const char* expr;
  std::int64_t expected;
};

class EvalIntrinsics : public ::testing::TestWithParam<IntrinsicCase> {};

TEST_P(EvalIntrinsics, Computes) {
  EvalHarness h(std::string("s = ") + GetParam().expr + ";");
  EXPECT_EQ(h.run(), GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Intrinsics, EvalIntrinsics,
    ::testing::Values(IntrinsicCase{"sext(255, 8)", -1},
                      IntrinsicCase{"sext(127, 8)", 127},
                      IntrinsicCase{"zext(-1, 8)", 255},
                      IntrinsicCase{"sat(40000, 16)", 32767},
                      IntrinsicCase{"sat(-40000, 16)", -32768},
                      IntrinsicCase{"sat(100, 16)", 100},
                      IntrinsicCase{"abs(-5)", 5},
                      IntrinsicCase{"abs(5)", 5},
                      IntrinsicCase{"min(3, -4)", -4},
                      IntrinsicCase{"max(3, -4)", 3}));

TEST(Eval, WrapAroundIsTwosComplement) {
  // INT64_MAX + 1 wraps to INT64_MIN on the 64-bit evaluation domain.
  EvalHarness h("s = ((1 << 63) - 1) + 1;");
  EXPECT_EQ(h.run(), INT64_MIN);
}

TEST(Eval, DivisionByZeroThrows) {
  EvalHarness h("s = 1 / (a - a);");
  EXPECT_THROW(h.run(), SimError);
}

TEST(Eval, RemainderByZeroThrows) {
  EvalHarness h("s = 1 % (a - a);");
  EXPECT_THROW(h.run(), SimError);
}

TEST(Eval, Int64MinDividedByMinusOneWraps) {
  EvalHarness h("s = ((1 << 63)) / (0 - 1);");
  EXPECT_EQ(h.run(), INT64_MIN);  // -INT64_MIN wraps
}

TEST(Eval, LocalsAndRuntimeIf) {
  EvalHarness h(R"(
    int32 t = a + 1;
    if (t > 10) {
      int32 u = t * 2;
      s = u;
    } else {
      s = t;
    }
  )");
  EXPECT_EQ(h.run(4), 5);
  EXPECT_EQ(h.run(20), 42);
}

TEST(Eval, LocalShadowsInInnerScopeOnly) {
  EvalHarness h(R"(
    int32 t = 1;
    if (a) {
      int32 u = 50;
      t = u;
    }
    s = t;
  )");
  EXPECT_EQ(h.run(0), 1);
  EXPECT_EQ(h.run(1), 50);
}

TEST(Eval, RegisterFileAndMemoryAccess) {
  EvalHarness h(R"(
    R[a] = 11;
    m[b] = R[a] + 1;
    s = m[b] * 10;
  )");
  EXPECT_EQ(h.run(3, 5), 120);
  EXPECT_EQ(h.state().read(h.model().resource_by_name("R")->id, 3), 11);
  EXPECT_EQ(h.state().read(h.model().resource_by_name("m")->id, 5), 12);
}

TEST(Eval, MemoryCanonicalizesToElementType) {
  // m is int32: a store of 2^31 reads back negative.
  EvalHarness h(R"(
    m[0] = (1 << 31);
    s = m[0];
  )");
  EXPECT_EQ(h.run(), INT64_C(-2147483648));
}

TEST(Eval, OutOfBoundsMemoryThrows) {
  EvalHarness h("s = m[99];");
  EXPECT_THROW(h.run(), SimError);
}

TEST(Eval, ControlIntrinsicsRaiseFlags) {
  EvalHarness h(R"(
    stall(3);
    flush();
    halt();
    s = 1;
  )");
  EXPECT_EQ(h.run(), 1);
  EXPECT_EQ(h.control().stall_cycles, 3);
  EXPECT_TRUE(h.control().flush);
  EXPECT_TRUE(h.control().halt);
}

TEST(Eval, ShiftAmountsAreMasked) {
  EvalHarness h("s = 1 << (64 + 3);");
  EXPECT_EQ(h.run(), 8);
}

// ---- operand delegation and upward references ---------------------------

constexpr const char* kOperandOps = R"(
  OPERATION rop {
    DECLARE { LABEL i; }
    CODING { 0b0 i=0bx[3] }
    SYNTAX { "R" i }
    EXPRESSION { R[i] }
  }
  OPERATION mop {
    DECLARE { LABEL i; }
    CODING { 0b1 i=0bx[3] }
    SYNTAX { "M" i }
    EXPRESSION { m[i] }
  }
)";

TEST(Eval, GroupOperandReadsAndWritesThroughExpression) {
  // instruction: two 4-bit operand groups + 8 field bits reused as `a`.
  const std::string source = R"(
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      REGISTER int32 R[8];
      MEMORY int32 m[32];
      int64 s;
      PIPELINE pipe = { EX; };
    }
    FETCH { WORD 16; MEMORY m; }
  )" + std::string(kOperandOps) + R"(
    OPERATION instruction {
      DECLARE { GROUP dst = { rop || mop }; GROUP src = { rop || mop };
                LABEL a; }
      CODING { dst src a=0bx[8] }
      BEHAVIOR { dst = src + a; }
    }
  )";
  auto model = compile_model_source_or_throw(source, "operand-test");
  Decoder decoder(*model);
  ProcessorState state(*model);
  PipelineControl control;
  Evaluator eval(state, control);

  // dst = R3 (0b0011), src = M2 (0b1010), a = 5  ->  R[3] = m[2] + 5
  state.write(model->resource_by_name("m")->id, 2, 40);
  DecodedNodePtr node = decoder.decode((0b0011u << 12) | (0b1010u << 8) | 5);
  ASSERT_NE(node, nullptr);
  eval.run_op(*node, nullptr);
  EXPECT_EQ(state.read(model->resource_by_name("R")->id, 3), 45);

  // dst = M7 (0b1111), src = R0 (0b0000), a = 1  ->  m[7] = R[0] + 1
  state.write(model->resource_by_name("R")->id, 0, 9);
  node = decoder.decode((0b1111u << 12) | (0b0000u << 8) | 1);
  ASSERT_NE(node, nullptr);
  eval.run_op(*node, nullptr);
  EXPECT_EQ(state.read(model->resource_by_name("m")->id, 7), 10);
}

TEST(Eval, UpwardReferenceFindsParentFieldsAndChildren) {
  const std::string source = R"(
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      REGISTER int32 R[8];
      MEMORY int32 m[32];
      int64 s;
      PIPELINE pipe = { EX; };
    }
    FETCH { WORD 16; MEMORY m; }
  )" + std::string(kOperandOps) + R"(
    OPERATION child_op {
      DECLARE { REFERENCE k; REFERENCE dst; }
      CODING { 0b0 }
      BEHAVIOR { dst = k * 3; }
    }
    OPERATION instruction {
      DECLARE { GROUP dst = { rop || mop }; INSTANCE c = child_op;
                LABEL k; }
      CODING { dst c k=0bx[8] 0b000 }
      BEHAVIOR { s = 1; }
    }
  )";
  auto model = compile_model_source_or_throw(source, "upward-test");
  Decoder decoder(*model);
  ProcessorState state(*model);
  PipelineControl control;
  Evaluator eval(state, control);

  // dst = R5 (0b0101), c = 0, k = 7 -> child writes R[5] = 21
  DecodedNodePtr root = decoder.decode((0b0101u << 12) | (7u << 3));
  ASSERT_NE(root, nullptr);
  // Execute the child node (it is coding-selected, slot 1).
  eval.run_op(*root->children[1], nullptr);
  EXPECT_EQ(state.read(model->resource_by_name("R")->id, 5), 21);
}

TEST(Eval, MissingExpressionThrows) {
  const std::string source = R"(
    RESOURCE {
      PROGRAM_COUNTER uint32 PC;
      MEMORY int32 m[32];
      int64 s;
      PIPELINE pipe = { EX; };
    }
    FETCH { WORD 8; MEMORY m; }
    OPERATION noexpr { CODING { 0b0 } }
    OPERATION instruction {
      DECLARE { GROUP g = { noexpr }; }
      CODING { g 0b0000000 }
      BEHAVIOR { s = g; }
    }
  )";
  auto model = compile_model_source_or_throw(source, "noexpr-test");
  Decoder decoder(*model);
  ProcessorState state(*model);
  PipelineControl control;
  Evaluator eval(state, control);
  DecodedNodePtr node = decoder.decode(0);
  ASSERT_NE(node, nullptr);
  EXPECT_THROW(eval.run_op(*node, nullptr), SimError);
}

}  // namespace
}  // namespace lisasim
