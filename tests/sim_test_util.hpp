// Shared helpers for simulator tests: run a program at all three
// simulation levels and assert the paper's accuracy claim — identical
// cycle counts and identical final architectural state.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/cached_interp.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"

namespace lisasim::testing {

struct CrossLevelRun {
  RunResult result;        // identical across levels (asserted)
  std::string state_dump;  // identical across levels (asserted)
};

/// Run `program` on all five simulation levels (interpretive,
/// decode-cached, compiled-dynamic, compiled-static, compiled-trace) and
/// assert exact agreement of timing and final state. `guard` arms the
/// write guards of the table-based levels (the interpretive oracle needs
/// none); it is required for any program that writes its own text. The
/// trace level runs with a hotness threshold of 1 so even short test
/// loops exercise superblock formation and chaining.
inline CrossLevelRun run_all_levels(const Model& model,
                                    const LoadedProgram& program,
                                    std::uint64_t max_cycles = 2'000'000,
                                    GuardPolicy guard = GuardPolicy::kOff) {
  InterpSimulator interp(model);
  interp.load(program);
  const RunResult r_interp = interp.run(max_cycles);
  const std::string s_interp = interp.state().dump_nonzero();

  CachedInterpSimulator cached(model);
  cached.set_guard_policy(guard);
  cached.load(program);
  const RunResult r_cached = cached.run(max_cycles);
  const std::string s_cached = cached.state().dump_nonzero();

  CompiledSimulator dynamic(model, SimLevel::kCompiledDynamic);
  dynamic.set_guard_policy(guard);
  dynamic.load(program);
  const RunResult r_dynamic = dynamic.run(max_cycles);
  const std::string s_dynamic = dynamic.state().dump_nonzero();

  CompiledSimulator stat(model, SimLevel::kCompiledStatic);
  stat.set_guard_policy(guard);
  stat.load(program);
  const RunResult r_static = stat.run(max_cycles);
  const std::string s_static = stat.state().dump_nonzero();

  CompiledSimulator trace(model, SimLevel::kTrace);
  TraceConfig eager;
  eager.hot_threshold = 1;
  eager.min_trace_cycles = 1;
  trace.set_trace_config(eager);
  trace.set_guard_policy(guard);
  trace.load(program);
  const RunResult r_trace = trace.run(max_cycles);
  const std::string s_trace = trace.state().dump_nonzero();

  EXPECT_EQ(r_interp.cycles, r_cached.cycles) << "interp vs cached cycles";
  EXPECT_EQ(r_interp.cycles, r_dynamic.cycles) << "interp vs dynamic cycles";
  EXPECT_EQ(r_interp.cycles, r_static.cycles) << "interp vs static cycles";
  EXPECT_EQ(r_interp.cycles, r_trace.cycles) << "interp vs trace cycles";
  EXPECT_EQ(r_interp.fetches, r_cached.fetches) << "interp vs cached fetches";
  EXPECT_EQ(r_interp.fetches, r_dynamic.fetches)
      << "interp vs dynamic fetches";
  EXPECT_EQ(r_interp.fetches, r_static.fetches) << "interp vs static fetches";
  EXPECT_EQ(r_interp.fetches, r_trace.fetches) << "interp vs trace fetches";
  EXPECT_EQ(r_interp.packets_retired, r_cached.packets_retired);
  EXPECT_EQ(r_interp.packets_retired, r_dynamic.packets_retired);
  EXPECT_EQ(r_interp.packets_retired, r_trace.packets_retired);
  EXPECT_EQ(r_interp.slots_retired, r_static.slots_retired);
  EXPECT_EQ(r_interp.slots_retired, r_trace.slots_retired);
  EXPECT_EQ(r_interp.halted, r_cached.halted);
  EXPECT_EQ(r_interp.halted, r_dynamic.halted);
  EXPECT_EQ(r_interp.halted, r_static.halted);
  EXPECT_EQ(r_interp.halted, r_trace.halted);
  // Belt and braces: the full RunResult must agree field-for-field...
  EXPECT_EQ(r_interp, r_cached);
  EXPECT_EQ(r_interp, r_dynamic);
  EXPECT_EQ(r_interp, r_static);
  EXPECT_EQ(r_interp, r_trace);
  // ...and so must every resource of the final architectural state, not
  // just its non-zero rendering.
  EXPECT_TRUE(interp.state() == cached.state()) << "interp vs cached state";
  EXPECT_TRUE(interp.state() == dynamic.state()) << "interp vs dynamic state";
  EXPECT_TRUE(interp.state() == stat.state()) << "interp vs static state";
  EXPECT_TRUE(interp.state() == trace.state()) << "interp vs trace state";
  EXPECT_EQ(s_interp, s_cached) << "interp vs cached final state";
  EXPECT_EQ(s_interp, s_dynamic) << "interp vs dynamic final state";
  EXPECT_EQ(s_interp, s_static) << "interp vs static final state";
  EXPECT_EQ(s_interp, s_trace) << "interp vs trace final state";

  return {r_interp, s_interp};
}

/// A named workload program for the differential harness.
struct DiffProgram {
  std::string name;
  std::string asm_source;
};

/// Per-target workload programs exercised by the differential test across
/// all simulation levels: control flow (taken/untaken branches, loops),
/// memory traffic with load-delay effects, stalls, and target-specific
/// idioms (tinydsp three-operand RISC, c54x accumulator/MAC/BANZ). The
/// c62x suite comes from workloads::paper_suite()-style generators and is
/// assembled in the test itself.
inline std::vector<DiffProgram> differential_workloads(
    std::string_view target) {
  std::vector<DiffProgram> programs;
  if (target == "tinydsp") {
    programs.push_back({"count_loop", R"(
        MVK 10, R1
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   ST R2, R3, 15     ; dmem[16] = sum
        HALT
        .data dmem 0
        .word 0
    )"});
    programs.push_back({"memcpy_stalls", R"(
        MVK 0, R1         ; source index
        MVK 4, R4         ; element count
        MVK 1, R5
loop:   BZ R4, done
        LD R3, R1, 0
        NOP 2             ; hold the load result through WB
        ST R3, R1, 8
        ADD.L R1, R1, R5
        SUB.L R4, R4, R5
        B loop
done:   HALT
        .data dmem 0
        .word 11, -22, 33, -44
    )"});
    programs.push_back({"mac_kernel", R"(
        MVK 0, R1         ; index
        MVK 0, R6         ; accumulator
        MVK 4, R4
        MVK 1, R5
loop:   BZ R4, done
        LD R2, R1, 0
        LD R3, R1, 4
        MUL.L R7, R2, R3
        ADD.L R6, R6, R7
        ADD.L R1, R1, R5
        SUB.L R4, R4, R5
        B loop
done:   ST R6, R5, 15     ; dmem[16] = dot product
        HALT
        .data dmem 0
        .word 1, 2, 3, 4
        .data dmem 4
        .word 5, 6, 7, 8
    )"});
  } else if (target == "c54x") {
    programs.push_back({"mac_banz", R"(
        LDI 0, A
        LDT @4            ; T = dmem[4]
        LDAR AR1, 3
loop:   MAC @0, A
        MAC @1, A
        BANZ loop, AR1
        ST A, @5
        HALT
        .data dmem 0
        .word 3, 5, 0, 0, 7
    )"});
    programs.push_back({"ar_indirect_copy", R"(
        LDAR AR3, 0
        LDAR AR7, 8
        LDAR AR1, 3
loop:   LD *AR3, A
        ST A, *AR7
        MAR AR3, 1
        MAR AR7, 1
        BANZ loop, AR1
        HALT
        .data dmem 0
        .word 11, -22, 33, -44
    )"});
    programs.push_back({"shift_arith", R"(
        LDI 100, A
        SFTL A, 5
        ADD @0, A
        ST A, @6
        LDI -5, B
        SFTL B, 2
        SUB @1, B
        ST B, @7
        HALT
        .data dmem 0
        .word 123, 45
    )"});
  }
  return programs;
}

/// Compile + assemble helper (throws on any model/assembly error).
struct TestTarget {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;

  explicit TestTarget(std::string_view model_source,
                      const std::string& name) {
    model = compile_model_source_or_throw(model_source, name);
    decoder = std::make_unique<Decoder>(*model);
  }

  LoadedProgram assemble(std::string_view asm_source) const {
    return assemble_or_throw(*model, *decoder, asm_source, "test.asm");
  }
};

/// Convenience: read one register-file element from a state dump-free path.
inline std::int64_t reg_of(const Model& model, ProcessorState& state,
                           const std::string& file, std::uint64_t index) {
  const Resource* r = model.resource_by_name(file);
  EXPECT_NE(r, nullptr) << file;
  return state.read(r->id, index);
}

}  // namespace lisasim::testing
