// Shared helpers for simulator tests: run a program at all three
// simulation levels and assert the paper's accuracy claim — identical
// cycle counts and identical final architectural state.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "asm/assembler.hpp"
#include "model/sema.hpp"
#include "sim/cached_interp.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"

namespace lisasim::testing {

struct CrossLevelRun {
  RunResult result;        // identical across levels (asserted)
  std::string state_dump;  // identical across levels (asserted)
};

/// Run `program` on all four simulation levels (interpretive,
/// decode-cached, compiled-dynamic, compiled-static) and assert exact
/// agreement of timing and final state.
inline CrossLevelRun run_all_levels(const Model& model,
                                    const LoadedProgram& program,
                                    std::uint64_t max_cycles = 2'000'000) {
  InterpSimulator interp(model);
  interp.load(program);
  const RunResult r_interp = interp.run(max_cycles);
  const std::string s_interp = interp.state().dump_nonzero();

  CachedInterpSimulator cached(model);
  cached.load(program);
  const RunResult r_cached = cached.run(max_cycles);
  const std::string s_cached = cached.state().dump_nonzero();

  CompiledSimulator dynamic(model, SimLevel::kCompiledDynamic);
  dynamic.load(program);
  const RunResult r_dynamic = dynamic.run(max_cycles);
  const std::string s_dynamic = dynamic.state().dump_nonzero();

  CompiledSimulator stat(model, SimLevel::kCompiledStatic);
  stat.load(program);
  const RunResult r_static = stat.run(max_cycles);
  const std::string s_static = stat.state().dump_nonzero();

  EXPECT_EQ(r_interp.cycles, r_cached.cycles) << "interp vs cached cycles";
  EXPECT_EQ(r_interp.cycles, r_dynamic.cycles) << "interp vs dynamic cycles";
  EXPECT_EQ(r_interp.cycles, r_static.cycles) << "interp vs static cycles";
  EXPECT_EQ(r_interp.packets_retired, r_cached.packets_retired);
  EXPECT_EQ(r_interp.packets_retired, r_dynamic.packets_retired);
  EXPECT_EQ(r_interp.slots_retired, r_static.slots_retired);
  EXPECT_EQ(r_interp.halted, r_cached.halted);
  EXPECT_EQ(r_interp.halted, r_dynamic.halted);
  EXPECT_EQ(r_interp.halted, r_static.halted);
  EXPECT_EQ(s_interp, s_cached) << "interp vs cached final state";
  EXPECT_EQ(s_interp, s_dynamic) << "interp vs dynamic final state";
  EXPECT_EQ(s_interp, s_static) << "interp vs static final state";

  return {r_interp, s_interp};
}

/// Compile + assemble helper (throws on any model/assembly error).
struct TestTarget {
  std::unique_ptr<Model> model;
  std::unique_ptr<Decoder> decoder;

  explicit TestTarget(std::string_view model_source,
                      const std::string& name) {
    model = compile_model_source_or_throw(model_source, name);
    decoder = std::make_unique<Decoder>(*model);
  }

  LoadedProgram assemble(std::string_view asm_source) const {
    return assemble_or_throw(*model, *decoder, asm_source, "test.asm");
  }
};

/// Convenience: read one register-file element from a state dump-free path.
inline std::int64_t reg_of(const Model& model, ProcessorState& state,
                           const std::string& file, std::uint64_t index) {
  const Resource* r = model.resource_by_name(file);
  EXPECT_NE(r, nullptr) << file;
  return state.read(r->id, index);
}

}  // namespace lisasim::testing
