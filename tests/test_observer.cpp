// Observer (trace/profile) tests, including the strong cross-level
// property: the event trace of the interpretive simulator and that of the
// compiled simulators are identical event-for-event.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/observer.hpp"
#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}

const char* kLoopProgram = R"(
        MVK 3, R1
        MVK 1, R2
loop:   BZ R1, done
        SUB.L R1, R1, R2
        B loop
done:   HALT
)";

std::string trace_of_interp(const LoadedProgram& p) {
  std::ostringstream out;
  TraceObserver trace(out);
  InterpSimulator sim(*tiny().model);
  sim.set_observer(&trace);
  sim.load(p);
  sim.run(10000);
  return out.str();
}

std::string trace_of_compiled(const LoadedProgram& p, SimLevel level) {
  std::ostringstream out;
  TraceObserver trace(out);
  CompiledSimulator sim(*tiny().model, level);
  sim.set_observer(&trace);
  sim.load(p);
  sim.run(10000);
  return out.str();
}

TEST(Observer, TraceIsIdenticalAcrossLevels) {
  const LoadedProgram p = tiny().assemble(kLoopProgram);
  const std::string interp = trace_of_interp(p);
  EXPECT_FALSE(interp.empty());
  EXPECT_EQ(interp, trace_of_compiled(p, SimLevel::kCompiledDynamic));
  EXPECT_EQ(interp, trace_of_compiled(p, SimLevel::kCompiledStatic));
}

TEST(Observer, TraceContainsFetchExecuteRetire) {
  const LoadedProgram p = tiny().assemble("MVK 5, R1\nHALT\n");
  const std::string trace = trace_of_interp(p);
  EXPECT_NE(trace.find("fetch   @0"), std::string::npos) << trace;
  EXPECT_NE(trace.find("stage 2 @0"), std::string::npos);  // EX of MVK
  EXPECT_NE(trace.find("retire  @0"), std::string::npos);
}

TEST(Observer, TraceShowsFlushOnTakenBranch) {
  const LoadedProgram p = tiny().assemble(R"(
        B over
        MVK 1, R1
over:   HALT
  )");
  const std::string trace = trace_of_interp(p);
  EXPECT_NE(trace.find("flush below stage 2"), std::string::npos) << trace;
}

TEST(Observer, TraceDisassemblyAnnotation) {
  const LoadedProgram p = tiny().assemble("MVK 5, R1\nHALT\n");
  std::ostringstream out;
  TraceObserver trace(out, [](std::uint64_t pc) {
    return "insn@" + std::to_string(pc);
  });
  InterpSimulator sim(*tiny().model);
  sim.set_observer(&trace);
  sim.load(p);
  sim.run(100);
  EXPECT_NE(out.str().find("insn@0"), std::string::npos);
}

TEST(Observer, TraceEventLimit) {
  const LoadedProgram p = tiny().assemble(kLoopProgram);
  std::ostringstream out;
  TraceObserver trace(out, nullptr, 3);
  InterpSimulator sim(*tiny().model);
  sim.set_observer(&trace);
  sim.load(p);
  sim.run(10000);
  int lines = 0;
  for (char c : out.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3);
}

TEST(Observer, ProfileCountsHotLoop) {
  const LoadedProgram p = tiny().assemble(kLoopProgram);
  ProfileObserver profile;
  InterpSimulator sim(*tiny().model);
  sim.set_observer(&profile);
  sim.load(p);
  const RunResult r = sim.run(10000);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(profile.total_fetches(), r.fetches);
  // The loop head (address 2) is fetched once per iteration (4 times:
  // R1 = 3, 2, 1, 0).
  EXPECT_EQ(profile.fetch_counts().at(2), 4u);
  // Hottest entries are sorted descending.
  const auto hottest = profile.hottest(3);
  ASSERT_GE(hottest.size(), 2u);
  EXPECT_GE(hottest[0].second, hottest[1].second);
  EXPECT_GT(profile.flushes(), 0u);
}

TEST(Observer, ProfileReportRenders) {
  const LoadedProgram p = tiny().assemble(kLoopProgram);
  ProfileObserver profile;
  InterpSimulator sim(*tiny().model);
  sim.set_observer(&profile);
  sim.load(p);
  sim.run(10000);
  const std::string report = profile.report(5);
  EXPECT_NE(report.find("address"), std::string::npos);
  EXPECT_NE(report.find("%"), std::string::npos);
}

TEST(Observer, DetachingStopsEvents) {
  const LoadedProgram p = tiny().assemble("HALT\n");
  std::ostringstream out;
  TraceObserver trace(out);
  InterpSimulator sim(*tiny().model);
  sim.set_observer(&trace);
  sim.set_observer(nullptr);
  sim.load(p);
  sim.run(100);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace lisasim
