// BatchedSimulator lane mechanics: the degenerate N = 1 batch must be
// indistinguishable from the sequential compiled-static simulator, lanes
// whose stimuli drive every PC apart must split into singleton groups and
// still match their sequential references bit-for-bit, a watchdog expiry
// must retire exactly the runaway lane, and a partially retired batch must
// round-trip through the BatchCheckpoint text format. The broad program
// coverage (all targets, fuzz-generated stimuli, guard policies) lives in
// test_differential.cpp; this file pins the lane bookkeeping.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

#include "sim/batched.hpp"
#include "sim/checkpoint_io.hpp"
#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::DiffProgram;
using testing::TestTarget;
using testing::differential_workloads;

// Loop whose trip count is the lane stimulus dmem[0]; the series sum lands
// in dmem[16], so both timing and final state depend on the stimulus.
constexpr std::string_view kLaneLoop = R"(
        MVK 0, R0
        LD R1, R0, 0      ; trip count = dmem[0]
        NOP 2
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   ST R2, R3, 15     ; dmem[16] = sum
        HALT
        .data dmem 0
        .word 0
)";

// Halts promptly when dmem[0] is zero; spins forever otherwise.
constexpr std::string_view kMaybeSpin = R"(
        MVK 0, R0
        LD R1, R0, 0
        NOP 2
loop:   BZ R1, done
        B loop
done:   HALT
        .data dmem 0
        .word 0
)";

void set_dmem0(const Model& model, ProcessorState& state, std::int64_t v) {
  const Resource* dmem = model.resource_by_name("dmem");
  ASSERT_NE(dmem, nullptr);
  state.write(dmem->id, 0, v);
}

struct SeqRun {
  RunResult result;
  std::string state_dump;
  bool errored = false;
  std::string error;
};

// One sequential compiled-static run with the same per-lane stimulus the
// batch applies; a thrown SimError loses the RunResult exactly as it does
// in the sequential API, so errored lanes compare error text + state.
SeqRun sequential_reference(const Model& model, const LoadedProgram& program,
                            std::int64_t stimulus, const RunLimits& limits) {
  CompiledSimulator sim(model, SimLevel::kCompiledStatic);
  sim.load(program);
  set_dmem0(model, sim.state(), stimulus);
  SeqRun out;
  try {
    out.result = sim.run(limits);
  } catch (const SimError& e) {
    out.errored = true;
    out.error = e.what();
  }
  out.state_dump = sim.state().dump_nonzero();
  return out;
}

class BatchedTest : public ::testing::Test {
 protected:
  TestTarget target_{targets::tinydsp_model_source(), "tinydsp"};
};

// N = 1 is the degenerate batch: stride-1 lane views and singleton groups
// must reproduce the unbatched engine's RunResult and final state on every
// differential workload.
TEST_F(BatchedTest, SingleLaneMatchesUnbatchedEngine) {
  for (const DiffProgram& dp : differential_workloads("tinydsp")) {
    SCOPED_TRACE(dp.name);
    const LoadedProgram program = target_.assemble(dp.asm_source);

    CompiledSimulator seq(*target_.model, SimLevel::kCompiledStatic);
    seq.load(program);
    const RunResult r_seq = seq.run();

    BatchedSimulator batch(*target_.model, 1);
    batch.load(program);
    batch.run();

    const LaneRun& lane = batch.lane_run(0);
    EXPECT_TRUE(lane.done);
    EXPECT_FALSE(lane.errored);
    EXPECT_EQ(lane.result, r_seq);
    EXPECT_TRUE(batch.lane_state(0) == seq.state());
    EXPECT_EQ(batch.lane_state(0).dump_nonzero(), seq.state().dump_nonzero());
  }
}

// Distinct trip counts drive every lane's PC apart after the first BZ, so
// the lockstep groups split all the way down to singletons — and each lane
// must still match its own sequential reference, timing and state.
TEST_F(BatchedTest, AllLanesDivergeAndMatchSequentialRuns) {
  constexpr unsigned kLanes = 8;
  const LoadedProgram program = target_.assemble(kLaneLoop);

  BatchedSimulator batch(*target_.model, kLanes);
  batch.load(program);
  for (unsigned l = 0; l < kLanes; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), 3 * l + 1);
  batch.run();

  std::set<std::uint64_t> distinct_cycles;
  for (unsigned l = 0; l < kLanes; ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    const SeqRun ref =
        sequential_reference(*target_.model, program, 3 * l + 1, RunLimits{});
    const LaneRun& lane = batch.lane_run(l);
    EXPECT_TRUE(lane.done);
    EXPECT_FALSE(lane.errored) << lane.error;
    EXPECT_EQ(lane.result, ref.result);
    EXPECT_EQ(batch.lane_state(l).dump_nonzero(), ref.state_dump);
    distinct_cycles.insert(lane.result.cycles);
  }
  // Divergence really happened: every lane took a different number of
  // cycles, so no two lanes shared a PC schedule.
  EXPECT_EQ(distinct_cycles.size(), kLanes);
}

// A runaway lane trips its per-lane watchdog and retires with the same
// recoverable error text the sequential engine throws; the rest of the
// batch runs to completion untouched.
TEST_F(BatchedTest, WatchdogRetiresOnlyTheExpiredLane) {
  constexpr unsigned kLanes = 4;
  constexpr unsigned kSpinner = 2;
  const LoadedProgram program = target_.assemble(kMaybeSpin);

  RunLimits limits;
  limits.watchdog_cycles = 400;

  BatchedSimulator batch(*target_.model, kLanes);
  batch.load(program);
  for (unsigned l = 0; l < kLanes; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), l == kSpinner ? 1 : 0);
  batch.run(limits);
  EXPECT_TRUE(batch.all_done());

  for (unsigned l = 0; l < kLanes; ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    const SeqRun ref = sequential_reference(*target_.model, program,
                                            l == kSpinner ? 1 : 0, limits);
    const LaneRun& lane = batch.lane_run(l);
    EXPECT_TRUE(lane.done);
    if (l == kSpinner) {
      ASSERT_TRUE(lane.errored);
      EXPECT_TRUE(lane.recoverable);
      EXPECT_NE(lane.error.find("watchdog: cycle limit"), std::string::npos)
          << lane.error;
      ASSERT_TRUE(ref.errored);
      EXPECT_EQ(lane.error, ref.error);  // byte-for-byte, pc/cycle included
    } else {
      EXPECT_FALSE(lane.errored) << lane.error;
      EXPECT_TRUE(lane.result.halted);
      EXPECT_EQ(lane.result, ref.result);
    }
    EXPECT_EQ(batch.lane_state(l).dump_nonzero(), ref.state_dump);
  }
}

// Stop a batch mid-flight with one lane already halted, round-trip the
// whole thing through the text checkpoint format, and resume the restored
// copy: every lane must finish exactly like the original.
TEST_F(BatchedTest, CheckpointRoundTripsPartiallyRetiredBatch) {
  constexpr unsigned kLanes = 4;
  const std::int64_t kStimuli[kLanes] = {1, 300, 400, 500};
  const LoadedProgram program = target_.assemble(kLaneLoop);

  BatchedSimulator batch(*target_.model, kLanes);
  batch.load(program);
  for (unsigned l = 0; l < kLanes; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), kStimuli[l]);
  batch.run(150);

  // The fast lane has retired, the long-running ones are frozen mid-loop.
  ASSERT_TRUE(batch.lane_run(0).done);
  ASSERT_TRUE(batch.lane_run(0).result.halted);
  for (unsigned l = 1; l < kLanes; ++l)
    ASSERT_FALSE(batch.lane_run(l).done) << "lane " << l;

  const BatchCheckpoint cp = batch.save_checkpoint();
  const std::string text = serialize_batch_checkpoint(cp);
  const BatchCheckpoint parsed = parse_batch_checkpoint(text);
  // Deterministic format: re-serializing the parse reproduces the text.
  EXPECT_EQ(serialize_batch_checkpoint(parsed), text);

  BatchedSimulator restored(*target_.model, kLanes);
  restored.load(program);
  restored.restore_checkpoint(parsed);

  // The retired lane's outcome travels with the checkpoint...
  EXPECT_TRUE(restored.lane_run(0).done);
  EXPECT_EQ(restored.lane_run(0).result, batch.lane_run(0).result);

  // ...and resuming both batches to completion keeps them identical.
  batch.run();
  restored.run();
  EXPECT_TRUE(batch.all_done());
  EXPECT_TRUE(restored.all_done());
  for (unsigned l = 0; l < kLanes; ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    EXPECT_EQ(restored.lane_run(l).result, batch.lane_run(l).result);
    EXPECT_TRUE(restored.lane_state(l) == batch.lane_state(l));
    EXPECT_EQ(restored.lane_state(l).dump_nonzero(),
              batch.lane_state(l).dump_nonzero());
  }
}

// A single lane's checkpoint is format-compatible with the sequential
// simulator: lift a mid-flight lane out of the batch, restore it into a
// CompiledSimulator, and both must finish with identical results.
TEST_F(BatchedTest, LaneCheckpointInterchangesWithSequentialSimulator) {
  constexpr unsigned kLanes = 3;
  const LoadedProgram program = target_.assemble(kLaneLoop);

  BatchedSimulator batch(*target_.model, kLanes);
  batch.load(program);
  for (unsigned l = 0; l < kLanes; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), 100 + 17 * l);
  batch.run(80);
  ASSERT_FALSE(batch.lane_run(1).done);

  const EngineCheckpoint lane_cp = batch.save_lane_checkpoint(1);
  // Through the standard single-engine text format, no batch wrapper.
  const EngineCheckpoint parsed =
      parse_checkpoint(serialize_checkpoint(lane_cp));

  CompiledSimulator seq(*target_.model, SimLevel::kCompiledStatic);
  seq.load(program);
  seq.restore_checkpoint(parsed);
  const RunResult r_seq = seq.run();

  batch.run();
  EXPECT_EQ(batch.lane_run(1).result.halted, r_seq.halted);
  EXPECT_EQ(batch.lane_run(1).result.cycles, r_seq.cycles);
  EXPECT_TRUE(batch.lane_state(1) == seq.state());
  EXPECT_EQ(batch.lane_state(1).dump_nonzero(), seq.state().dump_nonzero());
}

// Restoring a sequential checkpoint *into* a lane also works — the lane
// view scatters the flat snapshot across the SoA stride.
TEST_F(BatchedTest, SequentialCheckpointRestoresIntoLane) {
  const LoadedProgram program = target_.assemble(kLaneLoop);

  CompiledSimulator seq(*target_.model, SimLevel::kCompiledStatic);
  seq.load(program);
  set_dmem0(*target_.model, seq.state(), 120);
  RunLimits limits;
  limits.max_cycles = 90;
  const RunResult r_partial = seq.run(limits);
  ASSERT_FALSE(r_partial.halted);
  const EngineCheckpoint cp = seq.save_checkpoint();

  BatchedSimulator batch(*target_.model, 4);
  batch.load(program);
  for (unsigned l = 0; l < 4; ++l)
    set_dmem0(*target_.model, batch.lane_state(l), 2);  // short fillers
  batch.restore_lane_checkpoint(3, cp);

  batch.run();
  const RunResult r_seq = seq.run();
  EXPECT_EQ(batch.lane_run(3).result.cycles, r_seq.cycles);
  EXPECT_EQ(batch.lane_run(3).result.halted, r_seq.halted);
  EXPECT_TRUE(batch.lane_state(3) == seq.state());
}

TEST_F(BatchedTest, RejectsZeroAndOversizedLaneCounts) {
  EXPECT_THROW(BatchedSimulator(*target_.model, 0), SimError);
  EXPECT_THROW(BatchedSimulator(*target_.model, kMaxBatchLanes + 1), SimError);
}

}  // namespace
}  // namespace lisasim
