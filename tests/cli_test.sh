#!/bin/sh
# Integration test for the lisasim command-line driver. Invoked by ctest
# with the path to the binary as $1; exercises every subcommand against
# the built-in models and checks key output fragments.
set -eu

LISASIM="$1"
TMP="${TMPDIR:-/tmp}/lisasim_cli_test.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

expect_contains() {
  # expect_contains <file> <needle> <label>
  grep -q -e "$2" "$1" || { echo "--- output ---"; cat "$1"; fail "$3"; }
}

# ---- check + lint ---------------------------------------------------------
"$LISASIM" check @c62x > "$TMP/check.out" 2>&1
expect_contains "$TMP/check.out" "c62x: OK" "check @c62x"
expect_contains "$TMP/check.out" "0 lint findings" "c62x is lint-clean"
"$LISASIM" check @tinydsp > "$TMP/check2.out" 2>&1
expect_contains "$TMP/check2.out" "tinydsp: OK" "check @tinydsp"
"$LISASIM" check @c54x > "$TMP/check3.out" 2>&1
expect_contains "$TMP/check3.out" "c54x: OK" "check @c54x"

# ---- dump round trip ------------------------------------------------------
"$LISASIM" dump @tinydsp > "$TMP/db.lisa"
"$LISASIM" check "$TMP/db.lisa" > "$TMP/recheck.out" 2>&1
expect_contains "$TMP/recheck.out" "tinydsp: OK" "database reload"

# ---- assemble / disassemble ----------------------------------------------
cat > "$TMP/prog.asm" <<'EOF'
        MVK 5, A1
        ADD A1, A1, A2
        HALT
EOF
"$LISASIM" asm @c62x "$TMP/prog.asm" > "$TMP/words.out"
[ "$(wc -l < "$TMP/words.out")" = "3" ] || fail "asm emits 3 words"
"$LISASIM" disasm @c62x "$TMP/prog.asm" > "$TMP/dis.out"
expect_contains "$TMP/dis.out" "MVK 5, A1" "disasm round trip"
expect_contains "$TMP/dis.out" "ADD A1, A1, A2" "disasm round trip (2)"

# ---- run at every level ----------------------------------------------------
for level in interp cached dynamic static; do
  "$LISASIM" run @c62x "$TMP/prog.asm" --level "$level" --dump \
      > "$TMP/run_$level.out"
  expect_contains "$TMP/run_$level.out" "halted" "run --level $level halts"
  expect_contains "$TMP/run_$level.out" "A\[2\] = 10" \
      "run --level $level result"
done
# All levels report the same cycle count.
for level in cached dynamic static; do
  a=$(head -1 "$TMP/run_interp.out" | sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  b=$(head -1 "$TMP/run_$level.out" | sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  [ "$a" = "$b" ] || fail "cycle count interp=$a vs $level=$b"
done

# ---- observers -------------------------------------------------------------
"$LISASIM" run @c62x "$TMP/prog.asm" --trace 5 > "$TMP/trace.out"
expect_contains "$TMP/trace.out" "fetch   @0" "--trace prints events"
"$LISASIM" run @c62x "$TMP/prog.asm" --profile > "$TMP/profile.out"
expect_contains "$TMP/profile.out" "hot spots:" "--profile prints table"

# ---- stats -----------------------------------------------------------------
"$LISASIM" run @c62x "$TMP/prog.asm" --stats > "$TMP/stats.out"
expect_contains "$TMP/stats.out" "simulation compiler:" "--stats"

# ---- codegen: emitted simulator compiles and reproduces the run ------------
"$LISASIM" codegen @c62x "$TMP/prog.asm" > "$TMP/gen.cpp"
c++ -std=c++17 -O1 -o "$TMP/gen" "$TMP/gen.cpp"
"$TMP/gen" > "$TMP/gen.out"
expect_contains "$TMP/gen.out" "halted: 1" "generated simulator halts"
expect_contains "$TMP/gen.out" "A\[2\] = 10" "generated simulator result"
gen_cycles=$(sed -n 's/^cycles: //p' "$TMP/gen.out")
lib_cycles=$(head -1 "$TMP/run_static.out" |
             sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
[ "$gen_cycles" = "$lib_cycles" ] || \
    fail "generated cycles $gen_cycles != library $lib_cycles"

# ---- help ------------------------------------------------------------------
"$LISASIM" --help > "$TMP/help.out" 2>&1 || fail "--help should exit 0"
expect_contains "$TMP/help.out" "usage: lisasim" "--help prints usage"
expect_contains "$TMP/help.out" \
    "--level values: interp, cached, dynamic, static" \
    "--help lists the simulation levels"

# ---- error handling ---------------------------------------------------------
if "$LISASIM" run @c62x /nonexistent.asm > "$TMP/err.out" 2>&1; then
  fail "missing file should fail"
fi
if "$LISASIM" run @c62x "$TMP/prog.asm" --level bogus \
    > "$TMP/err3.out" 2>&1; then
  fail "unknown --level should fail"
fi
expect_contains "$TMP/err3.out" "unknown simulation level 'bogus'" \
    "unknown --level names the bad value"
expect_contains "$TMP/err3.out" \
    "valid levels: interp, cached, dynamic, static" \
    "unknown --level lists the valid names"
echo "BROKEN !!" > "$TMP/bad.asm"
if "$LISASIM" asm @c62x "$TMP/bad.asm" > "$TMP/err2.out" 2>&1; then
  fail "bad assembly should fail"
fi

echo "cli_test: all checks passed"
