#!/bin/sh
# Integration test for the lisasim command-line driver. Invoked by ctest
# with the path to the binary as $1 (and, optionally, the lisasim-fuzz
# binary as $2 and the lisasim-serve binary as $3); exercises every
# subcommand against the built-in models and checks key output fragments.
set -eu

LISASIM="$1"
LISASIM_FUZZ="${2:-}"
LISASIM_SERVE="${3:-}"
TMP="${TMPDIR:-/tmp}/lisasim_cli_test.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

expect_contains() {
  # expect_contains <file> <needle> <label>
  grep -q -e "$2" "$1" || { echo "--- output ---"; cat "$1"; fail "$3"; }
}

# ---- check + lint ---------------------------------------------------------
"$LISASIM" check @c62x > "$TMP/check.out" 2>&1
expect_contains "$TMP/check.out" "c62x: OK" "check @c62x"
expect_contains "$TMP/check.out" "0 lint findings" "c62x is lint-clean"
"$LISASIM" check @tinydsp > "$TMP/check2.out" 2>&1
expect_contains "$TMP/check2.out" "tinydsp: OK" "check @tinydsp"
"$LISASIM" check @c54x > "$TMP/check3.out" 2>&1
expect_contains "$TMP/check3.out" "c54x: OK" "check @c54x"

# ---- dump round trip ------------------------------------------------------
"$LISASIM" dump @tinydsp > "$TMP/db.lisa"
"$LISASIM" check "$TMP/db.lisa" > "$TMP/recheck.out" 2>&1
expect_contains "$TMP/recheck.out" "tinydsp: OK" "database reload"

# ---- assemble / disassemble ----------------------------------------------
cat > "$TMP/prog.asm" <<'EOF'
        MVK 5, A1
        ADD A1, A1, A2
        HALT
EOF
"$LISASIM" asm @c62x "$TMP/prog.asm" > "$TMP/words.out"
[ "$(wc -l < "$TMP/words.out")" = "3" ] || fail "asm emits 3 words"
"$LISASIM" disasm @c62x "$TMP/prog.asm" > "$TMP/dis.out"
expect_contains "$TMP/dis.out" "MVK 5, A1" "disasm round trip"
expect_contains "$TMP/dis.out" "ADD A1, A1, A2" "disasm round trip (2)"

# ---- run at every level ----------------------------------------------------
for level in interp cached dynamic static trace; do
  "$LISASIM" run @c62x "$TMP/prog.asm" --level "$level" --dump \
      > "$TMP/run_$level.out"
  expect_contains "$TMP/run_$level.out" "halted" "run --level $level halts"
  expect_contains "$TMP/run_$level.out" "A\[2\] = 10" \
      "run --level $level result"
done
# All levels report the same cycle count.
for level in cached dynamic static trace; do
  a=$(head -1 "$TMP/run_interp.out" | sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  b=$(head -1 "$TMP/run_$level.out" | sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  [ "$a" = "$b" ] || fail "cycle count interp=$a vs $level=$b"
done

# ---- observers -------------------------------------------------------------
"$LISASIM" run @c62x "$TMP/prog.asm" --trace 5 > "$TMP/trace.out"
expect_contains "$TMP/trace.out" "fetch   @0" "--trace prints events"
"$LISASIM" run @c62x "$TMP/prog.asm" --profile > "$TMP/profile.out"
expect_contains "$TMP/profile.out" "hot spots:" "--profile prints table"

# ---- stats -----------------------------------------------------------------
"$LISASIM" run @c62x "$TMP/prog.asm" --stats > "$TMP/stats.out"
expect_contains "$TMP/stats.out" "simulation compiler:" "--stats"
"$LISASIM" run @c62x "$TMP/prog.asm" --level cached --stats \
    > "$TMP/stats_cached.out"
expect_contains "$TMP/stats_cached.out" "lazily lowered" \
    "--stats reports the decode-cached level's lazy lowering"

# ---- hot-trace tier --------------------------------------------------------
# A loop hot enough (200 trips) to cross the default threshold; the trace
# run must report formation/chaining stats and match interp cycle for
# cycle (checked by the all-levels loop above for the straight-line
# program; this one adds real superblock coverage).
cat > "$TMP/hot.asm" <<'EOF'
        MVK 200, B0
        MVK 0, A3
        MVK 1, A4
loop:   [B0] B loop
        ADD A3, B0, A3
        SUB B0, A4, B0
        NOP 1
        NOP 1
        NOP 1
        HALT
EOF
"$LISASIM" run @c62x "$TMP/hot.asm" --level interp --dump \
    > "$TMP/hot_interp.out"
"$LISASIM" run @c62x "$TMP/hot.asm" --level trace --trace-threshold 4 \
    --stats --dump > "$TMP/hot_trace.out"
expect_contains "$TMP/hot_trace.out" "traces: .* formed" \
    "--level trace reports formation stats"
expect_contains "$TMP/hot_trace.out" "chained" \
    "--level trace reports chaining stats"
expect_contains "$TMP/hot_trace.out" "A\[3\] = 20100" \
    "--level trace computes the loop sum"
formed=$(sed -n 's/^traces: \([0-9][0-9]*\) formed.*/\1/p' \
    "$TMP/hot_trace.out")
[ "${formed:-0}" -ge 1 ] || fail "hot loop should form at least one trace"
a=$(head -1 "$TMP/hot_interp.out" | sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
b=$(grep ' cycles,' "$TMP/hot_trace.out" |
    sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
[ "$a" = "$b" ] || fail "trace cycles $b != interp $a on the hot loop"

# ---- codegen: emitted simulator compiles and reproduces the run ------------
"$LISASIM" codegen @c62x "$TMP/prog.asm" > "$TMP/gen.cpp"
c++ -std=c++17 -O1 -o "$TMP/gen" "$TMP/gen.cpp"
"$TMP/gen" > "$TMP/gen.out"
expect_contains "$TMP/gen.out" "halted: 1" "generated simulator halts"
expect_contains "$TMP/gen.out" "A\[2\] = 10" "generated simulator result"
gen_cycles=$(sed -n 's/^cycles: //p' "$TMP/gen.out")
lib_cycles=$(head -1 "$TMP/run_static.out" |
             sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
[ "$gen_cycles" = "$lib_cycles" ] || \
    fail "generated cycles $gen_cycles != library $lib_cycles"

# ---- help ------------------------------------------------------------------
"$LISASIM" --help > "$TMP/help.out" 2>&1 || fail "--help should exit 0"
expect_contains "$TMP/help.out" "usage: lisasim" "--help prints usage"
expect_contains "$TMP/help.out" \
    "--level values: interp, cached, dynamic, static, trace" \
    "--help lists the simulation levels"
expect_contains "$TMP/help.out" "--trace-threshold N" \
    "--help documents the trace hotness threshold"
expect_contains "$TMP/help.out" "3 recoverable guarded-execution stop" \
    "--help documents the exit-code-3 semantics"

# ---- guarded execution ------------------------------------------------------
# A self-patching tinydsp program: after 5 ADD trips it overwrites its own
# loop body with the SUB template word, then runs 7 more trips.
# dmem[32] = 100 + 3*5 - 3*7 = 94. Unguarded compiled levels keep
# executing the stale ADD translation and get 136 instead.
cat > "$TMP/smc.asm" <<'EOF'
        .entry start
start:  MVK 0, R0
        MVK 3, R2
        MVK 100, R6
        MVK 1, R5
        MVK 1, R9
        MVK 5, R4
loop:   BZ R4, phase
patch:  ADD.L R6, R6, R2
        SUB.L R4, R4, R5
        B loop
phase:  BZ R9, done
        MVK 0, R9
        LDP R7, R0, tmpl
        STP R7, R0, patch
        MVK 7, R4
        B loop
done:   ST R6, R0, 32
        HALT
tmpl:   SUB.L R6, R6, R2
EOF
"$LISASIM" run @tinydsp "$TMP/smc.asm" --level interp --dump \
    > "$TMP/smc_interp.out"
expect_contains "$TMP/smc_interp.out" "dmem\[32\] = 94" \
    "interp follows the patch"
"$LISASIM" run @tinydsp "$TMP/smc.asm" --level static --dump \
    > "$TMP/smc_off.out"
expect_contains "$TMP/smc_off.out" "dmem\[32\] = 136" \
    "unguarded static executes the stale translation"
for policy in recompile fallback; do
  # Both option spellings: --guard <p> and --guard=<p>.
  "$LISASIM" run @tinydsp "$TMP/smc.asm" --level static --guard "$policy" \
      --dump > "$TMP/smc_sp_$policy.out"
  "$LISASIM" run @tinydsp "$TMP/smc.asm" --level static --guard="$policy" \
      --dump --stats > "$TMP/smc_$policy.out"
  expect_contains "$TMP/smc_sp_$policy.out" "dmem\[32\] = 94" \
      "--guard $policy matches the interpretive oracle"
  expect_contains "$TMP/smc_$policy.out" "dmem\[32\] = 94" \
      "--guard=$policy matches the interpretive oracle"
  expect_contains "$TMP/smc_$policy.out" "guards: 1 guarded write" \
      "--guard=$policy reports guard stats"
  # Guarded timing must equal the oracle's, cycle for cycle.
  a=$(grep ' cycles,' "$TMP/smc_interp.out" |
      sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  b=$(grep ' cycles,' "$TMP/smc_$policy.out" |
      sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  [ "$a" = "$b" ] || fail "guarded cycles interp=$a vs $policy=$b"
done
if "$LISASIM" run @tinydsp "$TMP/smc.asm" --guard bogus \
    > "$TMP/err4.out" 2>&1; then
  fail "unknown --guard should fail"
fi
expect_contains "$TMP/err4.out" "unknown guard policy 'bogus'" \
    "unknown --guard names the bad value"

# ---- hot traces under guarded execution (SMC) ------------------------------
# The c62x flavor of the self-patching accumulator: the loop body is
# branch-predictable, so with an eager threshold the patched packet sits
# inside a formed superblock. The guard must invalidate that stale trace
# and the run must stay bit-identical to the interpretive oracle; without
# guards the trace tier must diverge exactly like the static level does.
cat > "$TMP/smc62.asm" <<'EOF'
        .entry start
start:  MVK 0, A0
        MVK 3, A3
        MVK 100, A7
        MVK 1, A1
        MVK 5, B0
loop:   ADDK -1, B0
patch:  ADD A7, A3, A7
        [B0] B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        [!A1] B done
        [A1] LDP A0, tmpl, A5
        [A1] STP A5, A0, patch
        [A1] MVK 7, B0
        [A1] MVK 0, A1
        NOP 1
        B loop
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        NOP 1
done:   MVK 32, A8
        STW A7, A8, 0
        NOP 1
        NOP 1
        NOP 1
        NOP 1
        HALT
tmpl:   SUB A7, A3, A7
EOF
"$LISASIM" run @c62x "$TMP/smc62.asm" --level interp --dump \
    > "$TMP/smc62_interp.out"
expect_contains "$TMP/smc62_interp.out" "dmem\[32\] = 94" \
    "interp follows the c62x patch"
for policy in recompile fallback; do
  "$LISASIM" run @c62x "$TMP/smc62.asm" --level trace --trace-threshold 1 \
      --guard "$policy" --stats --dump > "$TMP/smc62_trace_$policy.out"
  expect_contains "$TMP/smc62_trace_$policy.out" "dmem\[32\] = 94" \
      "guarded trace run matches the oracle ($policy)"
  inv=$(sed -n 's/^traces: .* \([0-9][0-9]*\) invalidated$/\1/p' \
      "$TMP/smc62_trace_$policy.out")
  [ "${inv:-0}" -ge 1 ] || \
      fail "patching traced text must invalidate a trace ($policy)"
  a=$(grep ' cycles,' "$TMP/smc62_interp.out" |
      sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  b=$(grep ' cycles,' "$TMP/smc62_trace_$policy.out" |
      sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
  [ "$a" = "$b" ] || fail "guarded trace cycles interp=$a vs trace=$b"
done
"$LISASIM" run @c62x "$TMP/smc62.asm" --level trace --trace-threshold 1 \
    --dump > "$TMP/smc62_off.out"
"$LISASIM" run @c62x "$TMP/smc62.asm" --level static --dump \
    > "$TMP/smc62_static_off.out"
expect_contains "$TMP/smc62_off.out" "dmem\[32\] = 136" \
    "unguarded traces replay the stale translation"
expect_contains "$TMP/smc62_static_off.out" "dmem\[32\] = 136" \
    "unguarded static diverges identically"

# ---- watchdog limits --------------------------------------------------------
cat > "$TMP/spin.asm" <<'EOF'
        .entry start
start:  MVK 1, R1
loop:   B loop
        HALT
EOF
# --max-cycles is a soft stop (exit 0) ...
"$LISASIM" run @tinydsp "$TMP/spin.asm" --level static --max-cycles 300 \
    > "$TMP/mc.out"
expect_contains "$TMP/mc.out" "300 cycles" "--max-cycles stops the run"
expect_contains "$TMP/mc.out" "cycle limit reached" "--max-cycles is soft"
# ... while --watchdog is a recoverable error (exit 3) at every level.
for level in interp cached dynamic static trace; do
  if "$LISASIM" run @tinydsp "$TMP/spin.asm" --level "$level" \
      --watchdog 500 > "$TMP/wd.out" 2>&1; then
    fail "--watchdog should fail ($level)"
  else
    code=$?
  fi
  [ "$code" = "3" ] || fail "--watchdog should exit 3 ($level, got $code)"
  expect_contains "$TMP/wd.out" "watchdog: cycle limit 500" \
      "watchdog message ($level)"
done
# The livelock watchdog trips on consecutive non-retiring cycles — a
# recoverable stop (exit 3, never the fatal exit 1) at every level.
cat > "$TMP/stall.asm" <<'EOF'
        .entry start
start:  NOP 15
        HALT
EOF
for level in interp cached dynamic static trace; do
  if "$LISASIM" run @tinydsp "$TMP/stall.asm" --level "$level" \
      --max-stuck 5 > "$TMP/stuck.out" 2>&1; then
    fail "--max-stuck should fail ($level)"
  else
    code=$?
  fi
  [ "$code" = "3" ] || fail "--max-stuck should exit 3 ($level, got $code)"
  expect_contains "$TMP/stuck.out" "consecutive cycles without a retiring" \
      "stuck-limit message ($level)"
done
# Fatal simulation errors keep exiting 1, distinct from recoverable stops.
cat > "$TMP/oob.asm" <<'EOF'
        .entry start
start:  MVK 9999, R1
        LD R2, R1, 0
        HALT
EOF
if "$LISASIM" run @tinydsp "$TMP/oob.asm" --level interp \
    > "$TMP/oob.out" 2>&1; then
  fail "out-of-bounds access should fail"
else
  code=$?
fi
[ "$code" = "1" ] || fail "fatal error should exit 1 (got $code)"
expect_contains "$TMP/oob.out" "out-of-bounds access" "fatal error message"

# ---- batched lockstep lanes -------------------------------------------------
# Exit codes must match the equivalent single-lane runs: 0 when every lane
# halts, 3 when a watchdog retires a lane, 1 on a fatal lane error, 2 on
# usage errors.
"$LISASIM" run @tinydsp "$TMP/smc.asm" --batch 4 --guard recompile --dump \
    > "$TMP/batch.out"
[ "$(grep -c 'halted' "$TMP/batch.out")" = "4" ] || \
    fail "--batch 4 should report 4 halted lanes"
[ "$(grep -c 'dmem\[32\] = 94' "$TMP/batch.out")" = "4" ] || \
    fail "every guarded batch lane must match the interpretive oracle"
# Per-lane cycle counts equal the sequential guarded run's.
a=$(grep ' cycles,' "$TMP/smc_recompile.out" |
    sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
b=$(sed -n 's/^lane 0: \([0-9]*\) cycles.*/\1/p' "$TMP/batch.out")
[ "$a" = "$b" ] || fail "batched lane cycles $b != sequential $a"
# A spinning program: every lane hits the watchdog, exit 3 like unbatched.
if "$LISASIM" run @tinydsp "$TMP/spin.asm" --batch 3 --watchdog 500 \
    > "$TMP/batch_wd.out" 2>&1; then
  fail "--batch --watchdog should fail"
else
  code=$?
fi
[ "$code" = "3" ] || fail "--batch watchdog should exit 3 (got $code)"
expect_contains "$TMP/batch_wd.out" "watchdog: cycle limit 500" \
    "batched watchdog message"
[ "$(grep -c 'recoverable error' "$TMP/batch_wd.out")" = "3" ] || \
    fail "all 3 spinning lanes should retire recoverably"
# Fatal lane errors exit 1, distinct from recoverable stops.
if "$LISASIM" run @tinydsp "$TMP/oob.asm" --batch 2 \
    > "$TMP/batch_oob.out" 2>&1; then
  fail "--batch with a fatal lane should fail"
else
  code=$?
fi
[ "$code" = "1" ] || fail "fatal batched lane should exit 1 (got $code)"
expect_contains "$TMP/batch_oob.out" "out-of-bounds access" \
    "batched fatal error message"
# Usage errors: batch runs at the static level only, and needs >= 1 lane.
if "$LISASIM" run @tinydsp "$TMP/spin.asm" --batch 2 --level interp \
    > "$TMP/batch_err.out" 2>&1; then
  fail "--batch --level interp should fail"
else
  code=$?
fi
[ "$code" = "2" ] || fail "--batch at interp should exit 2 (got $code)"
expect_contains "$TMP/batch_err.out" "static level only" \
    "--batch names the level restriction"
if "$LISASIM" run @tinydsp "$TMP/spin.asm" --batch 0 \
    > "$TMP/batch_err0.out" 2>&1; then
  fail "--batch 0 should fail"
else
  code=$?
fi
[ "$code" = "2" ] || fail "--batch 0 should exit 2 (got $code)"
# --poke fans per-lane stimuli: a loop whose trip count comes from dmem[0]
# gives each poked lane its own cycle count and final sum (dmem[16]).
cat > "$TMP/lanes.asm" <<'EOF'
        .entry start
start:  MVK 0, R0
        LD R1, R0, 0
        NOP 2
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   ST R2, R3, 15
        HALT
        .data dmem 0
        .word 0
EOF
"$LISASIM" run @tinydsp "$TMP/lanes.asm" --batch 3 --poke 1:dmem[0]=3 \
    --poke "2:dmem[0]=5" --dump > "$TMP/batch_poke.out"
expect_contains "$TMP/batch_poke.out" "dmem\[16\] = 6" \
    "poked lane 1 sums 3+2+1"
expect_contains "$TMP/batch_poke.out" "dmem\[16\] = 15" \
    "poked lane 2 sums 5+4+3+2+1"
[ "$(sed -n 's/^lane [0-9]*: \([0-9]*\) cycles.*/\1/p' "$TMP/batch_poke.out" |
    sort -u | wc -l)" = "3" ] || \
    fail "differently poked lanes should retire in different cycle counts"
if "$LISASIM" run @tinydsp "$TMP/lanes.asm" --poke 0:dmem[0]=1 \
    > "$TMP/poke_err.out" 2>&1; then
  fail "--poke without --batch should fail"
else
  code=$?
fi
[ "$code" = "2" ] || fail "--poke without --batch should exit 2 (got $code)"

# ---- checkpoint save/restore round trip ------------------------------------
for level in interp cached dynamic static trace; do
  "$LISASIM" run @tinydsp "$TMP/smc.asm" --level "$level" --guard recompile \
      --checkpoint 40 --dump > "$TMP/ckpt_$level.out"
  expect_contains "$TMP/ckpt_$level.out" "cycles verified" \
      "checkpoint replay verified ($level)"
  expect_contains "$TMP/ckpt_$level.out" "dmem\[32\] = 94" \
      "checkpoint run reaches the same result ($level)"
done

# ---- resilient supervisor ---------------------------------------------------
# Injected faults must be absorbed: the supervised run retries, degrades
# when the fault persists, and still matches the unfaulted interpretive
# oracle cycle for cycle and bit for bit. --stats prints the recovery log.
cat > "$TMP/res.asm" <<'EOF'
        MVK 40, R1
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   ST R2, R3, 15
        HALT
        .data dmem 0
        .word 0
EOF
"$LISASIM" run @tinydsp "$TMP/res.asm" --level interp --dump \
    > "$TMP/res_ref.out"
expect_contains "$TMP/res_ref.out" "dmem\[16\] = 820" "oracle sums 1..40"
"$LISASIM" run @tinydsp "$TMP/res.asm" --resilience \
    --inject-fault memory@50x2,compile@0 --stats --dump > "$TMP/res.out"
expect_contains "$TMP/res.out" "supervised from compiled-static" \
    "--resilience reports the supervised run"
expect_contains "$TMP/res.out" "halted" "supervised run still halts"
expect_contains "$TMP/res.out" "recovery log: 3 fault(s) injected" \
    "--stats prints the recovery log"
expect_contains "$TMP/res.out" "degrade compiled-static -> compiled-dynamic" \
    "persistent fault degrades one level"
expect_contains "$TMP/res.out" "dmem\[16\] = 820" \
    "supervised run matches the oracle's sum"
a=$(grep ' cycles,' "$TMP/res_ref.out" |
    sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
b=$(grep ' cycles,' "$TMP/res.out" | sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
[ "$a" = "$b" ] || fail "supervised cycles $b != interp $a"
# A no-fault supervised run is a plain run plus an empty log.
"$LISASIM" run @tinydsp "$TMP/res.asm" --resilience --stats \
    > "$TMP/res_clean.out"
expect_contains "$TMP/res_clean.out" \
    "recovery log: 0 fault(s) injected, 0 retrie(s), 0 degradation(s)" \
    "no-fault supervision logs nothing"
b=$(grep ' cycles,' "$TMP/res_clean.out" |
    sed 's/[^0-9]*\([0-9]*\) cycles.*/\1/')
[ "$a" = "$b" ] || fail "no-fault supervised cycles $b != interp $a"
# Exhausting the recovery budget rethrows the fault recoverably (exit 3).
if "$LISASIM" run @tinydsp "$TMP/res.asm" --resilience \
    --inject-fault memory@50x200 > "$TMP/res_giveup.out" 2>&1; then
  fail "exhausted recovery budget should fail"
else
  code=$?
fi
[ "$code" = "3" ] || fail "recovery give-up should exit 3 (got $code)"
expect_contains "$TMP/res_giveup.out" "injected memory fault" \
    "give-up names the unrecovered fault"
# Malformed --inject-fault specs and incompatible modes are usage errors.
if "$LISASIM" run @tinydsp "$TMP/res.asm" --inject-fault bogus@10 \
    > "$TMP/res_err.out" 2>&1; then
  fail "unknown fault kind should fail"
else
  code=$?
fi
[ "$code" = "2" ] || fail "unknown fault kind should exit 2 (got $code)"
if "$LISASIM" run @tinydsp "$TMP/res.asm" --resilience --batch 2 \
    > "$TMP/res_err2.out" 2>&1; then
  fail "--resilience with --batch should fail"
else
  code=$?
fi
[ "$code" = "2" ] || fail "--resilience --batch should exit 2 (got $code)"

# ---- error handling ---------------------------------------------------------
if "$LISASIM" run @c62x /nonexistent.asm > "$TMP/err.out" 2>&1; then
  fail "missing file should fail"
fi
if "$LISASIM" run @c62x "$TMP/prog.asm" --level bogus \
    > "$TMP/err3.out" 2>&1; then
  fail "unknown --level should fail"
fi
expect_contains "$TMP/err3.out" "unknown simulation level 'bogus'" \
    "unknown --level names the bad value"
expect_contains "$TMP/err3.out" \
    "valid levels: interp, cached, dynamic, static, trace" \
    "unknown --level lists the valid names"
echo "BROKEN !!" > "$TMP/bad.asm"
if "$LISASIM" asm @c62x "$TMP/bad.asm" > "$TMP/err2.out" 2>&1; then
  fail "bad assembly should fail"
fi

# ---- lisasim-fuzz ----------------------------------------------------------
if [ -n "$LISASIM_FUZZ" ]; then
  # A short seed sweep stays clean: exit 0, no repro bundles, and the
  # coverage counters print under --stats.
  "$LISASIM_FUZZ" @tinydsp --seeds 12 --stats \
      --repro-dir "$TMP/repros" > "$TMP/fuzz.out" 2>&1 \
      || fail "clean fuzz sweep should exit 0"
  expect_contains "$TMP/fuzz.out" "0 divergences" "clean sweep reports zero"
  expect_contains "$TMP/fuzz.out" "smc_patches" "--stats prints coverage"
  [ ! -d "$TMP/repros" ] || [ -z "$(ls -A "$TMP/repros")" ] \
      || fail "clean sweep must not write repro bundles"

  # Coverage-guided scheduling stays clean and deterministic too.
  "$LISASIM_FUZZ" @tinydsp --seeds 8 --schedule --stats \
      --repro-dir "$TMP/repros" > "$TMP/sched.out" 2>&1 \
      || fail "--schedule sweep should exit 0"
  expect_contains "$TMP/sched.out" "0 divergences" "--schedule sweep is clean"

  # The resilience sweep: every agreeing seed re-runs under the
  # supervisor with a seed-derived fault schedule and must stay
  # bit-identical to the unfaulted oracle.
  "$LISASIM_FUZZ" @tinydsp --seeds 8 --resilience \
      --repro-dir "$TMP/repros" > "$TMP/res_fuzz.out" 2>&1 \
      || fail "--resilience sweep should exit 0"
  expect_contains "$TMP/res_fuzz.out" "0 divergences" \
      "--resilience sweep is clean"

  # --soak honors its wall-clock budget (2s + slack for the last seed).
  start=$(date +%s)
  "$LISASIM_FUZZ" @tinydsp --soak 2 --repro-dir "$TMP/repros" \
      > "$TMP/soak.out" 2>&1 || fail "clean soak should exit 0"
  elapsed=$(( $(date +%s) - start ))
  [ "$elapsed" -le 30 ] || fail "--soak 2 took ${elapsed}s"
  expect_contains "$TMP/soak.out" "0 divergences" "soak reports zero"

  # The injection hook forces the divergence path end to end: exit 1, a
  # minimized repro, and a self-contained bundle on disk.
  if "$LISASIM_FUZZ" @tinydsp --seeds 3..3 --inject-divergence 3 \
      --repro-dir "$TMP/inj" > "$TMP/inj.out" 2>&1; then
    fail "injected divergence should exit 1"
  else
    code=$?
  fi
  [ "$code" = "1" ] || fail "divergence should exit 1 (got $code)"
  expect_contains "$TMP/inj.out" "DIVERGENCE seed 3" "divergence report"
  expect_contains "$TMP/inj.out" "repro bundle:" "bundle path printed"
  bundle=$(sed -n 's/^  repro bundle: //p' "$TMP/inj.out")
  for f in program.asm minimized.asm checkpoint.txt meta.txt; do
    [ -s "$bundle/$f" ] || fail "bundle file $f missing or empty"
  done
  expect_contains "$bundle/checkpoint.txt" "lisasim-checkpoint 1" \
      "checkpoint header"
  expect_contains "$bundle/meta.txt" "level trace" "meta records the level"

  # Usage errors exit 2, matching the lisasim driver.
  if "$LISASIM_FUZZ" > "$TMP/fuzzusage.out" 2>&1; then
    fail "missing model should fail"
  else
    code=$?
  fi
  [ "$code" = "2" ] || fail "usage error should exit 2 (got $code)"
fi

# ---- lisasim-serve (if provided) ------------------------------------------
if [ -n "$LISASIM_SERVE" ]; then
  # Batch job mode: a fleet of copies plus a guarded SMC session and an
  # interpretive probe of the same program; everything shares one table
  # cache, and copies of one program must report identical counters.
  cat > "$TMP/jobs" <<'EOF'
# serve integration job
threads 2
quantum 2048
session fleet @fir level=static copies=4
session probe @fir level=interp
session smc @smc level=static guard=recompile
EOF
  "$LISASIM_SERVE" @c62x --jobs "$TMP/jobs" --metrics > "$TMP/serve.out" 2>&1 \
      || fail "serve job mode should exit 0 (got $?)"
  expect_contains "$TMP/serve.out" "session fleet-0: halted" "fleet-0 halts"
  expect_contains "$TMP/serve.out" "session fleet-3: halted" "fleet-3 halts"
  expect_contains "$TMP/serve.out" "session smc: halted" "guarded smc halts"
  expect_contains "$TMP/serve.out" "metrics: sessions=6 finished=6" \
      "metrics line"
  expect_contains "$TMP/serve.out" "aggregate_mips=" "metrics report MIPS"
  # All four copies and the interpretive probe agree cycle-for-cycle.
  fleet_cycles=$(sed -n 's/^session fleet-[0-9]*: halted.*cycles=\([0-9]*\).*/\1/p' \
      "$TMP/serve.out" | sort -u)
  [ "$(echo "$fleet_cycles" | wc -l)" = "1" ] || fail "fleet copies diverged"
  probe_cycles=$(sed -n 's/^session probe: halted.*cycles=\([0-9]*\).*/\1/p' \
      "$TMP/serve.out")
  [ "$fleet_cycles" = "$probe_cycles" ] || \
      fail "static fleet ($fleet_cycles) != interp probe ($probe_cycles)"

  # A watchdog stop is a recoverable session error: exit code 3 and a
  # stopped="..." report.
  cat > "$TMP/jobs_wd" <<'EOF'
session wd @fir level=static watchdog=500
EOF
  if "$LISASIM_SERVE" @c62x --jobs "$TMP/jobs_wd" > "$TMP/serve_wd.out" 2>&1
  then
    fail "watchdog job should exit 3"
  else
    code=$?
  fi
  [ "$code" = "3" ] || fail "watchdog job should exit 3 (got $code)"
  expect_contains "$TMP/serve_wd.out" 'session wd: error' "watchdog outcome"
  expect_contains "$TMP/serve_wd.out" 'stopped=' "watchdog is recoverable"

  # Cross-process checkpoint hand-off: process 1 runs a session halfway
  # and checkpoints it; process 2 (a fresh lisasim-serve) restores the
  # file mid-flight and finishes. The resumed totals must equal an
  # uninterrupted run's (the `full` session in process 2).
  printf 'open a @fir level=static\nrun a 5000\ncheckpoint a %s\nquit\n' \
      "$TMP/mid.ckpt" | "$LISASIM_SERVE" @c62x --interactive \
      > "$TMP/serve_p1.out" 2>&1 || fail "serve process 1 failed"
  expect_contains "$TMP/serve_p1.out" "ok run a cycles=5000 halted=0" \
      "partial run stops at 5000"
  expect_contains "$TMP/serve_p1.out" "ok checkpoint a" "checkpoint written"
  [ -s "$TMP/mid.ckpt" ] || fail "checkpoint file missing"
  expect_contains "$TMP/mid.ckpt" "lisasim-serve-session 1" \
      "session checkpoint header"

  printf 'open b @fir level=static\nrestore b %s\nrunall\nreport b\nopen full @fir level=static\nrunall\nreport full\nquit\n' \
      "$TMP/mid.ckpt" | "$LISASIM_SERVE" @c62x --interactive \
      > "$TMP/serve_p2.out" 2>&1 || fail "serve process 2 failed"
  expect_contains "$TMP/serve_p2.out" "ok restore b" "cross-process restore"
  expect_contains "$TMP/serve_p2.out" "session b: halted" "restored run halts"
  resumed=$(sed -n 's/^session b: halted.*cycles=\([0-9]*\).*/\1/p' \
      "$TMP/serve_p2.out")
  full=$(sed -n 's/^session full: halted.*cycles=\([0-9]*\).*/\1/p' \
      "$TMP/serve_p2.out")
  [ -n "$resumed" ] && [ "$resumed" = "$full" ] || \
      fail "resumed cycles ($resumed) != uninterrupted cycles ($full)"

  # Usage errors exit 2.
  if "$LISASIM_SERVE" @c62x > "$TMP/serveusage.out" 2>&1; then
    fail "serve without a mode should fail"
  else
    code=$?
  fi
  [ "$code" = "2" ] || fail "serve usage error should exit 2 (got $code)"
fi

echo "cli_test: all checks passed"
