// Pipeline-engine timing properties, parameterized sweeps, and run
// control (split runs, resets, cycle limits) — all asserted identically
// across the three simulation levels.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}

/// Property: total cycles are linear in straight-line program length.
class StraightLineLength : public ::testing::TestWithParam<int> {};

TEST_P(StraightLineLength, CyclesAreLinear) {
  const int k = GetParam();
  std::string source;
  for (int i = 0; i < k; ++i)
    source += "MVK " + std::to_string(i) + ", R" + std::to_string(i % 8) +
              "\n";
  source += "HALT\n";
  const LoadedProgram p = tiny().assemble(source);
  const auto run = testing::run_all_levels(*tiny().model, p);
  // One instruction issues per cycle; HALT executes in EX after the fill.
  // k = 0 gives the base fill time; each instruction adds one cycle.
  static const std::uint64_t base = [] {
    const LoadedProgram halt_only = tiny().assemble("HALT\n");
    return testing::run_all_levels(*tiny().model, halt_only).result.cycles;
  }();
  EXPECT_EQ(run.result.cycles, base + static_cast<std::uint64_t>(k));
}

INSTANTIATE_TEST_SUITE_P(Lengths, StraightLineLength,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 64));

/// Property: NOP n costs exactly n-1 extra cycles (stall behavior).
class NopStallSweep : public ::testing::TestWithParam<int> {};

TEST_P(NopStallSweep, StallCycles) {
  const int n = GetParam();
  const LoadedProgram one = tiny().assemble("NOP 1\nHALT\n");
  const LoadedProgram many =
      tiny().assemble("NOP " + std::to_string(n) + "\nHALT\n");
  const auto r1 = testing::run_all_levels(*tiny().model, one);
  const auto rn = testing::run_all_levels(*tiny().model, many);
  EXPECT_EQ(rn.result.cycles - r1.result.cycles,
            static_cast<std::uint64_t>(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Counts, NopStallSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 15));

TEST(Engine, SplitRunsMatchSingleRun) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 10, R1
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        B loop
done:   HALT
  )");
  // Single run.
  InterpSimulator whole(*tiny().model);
  whole.load(p);
  const RunResult full = whole.run();

  // Split run: many small quanta.
  InterpSimulator split(*tiny().model);
  split.load(p);
  RunResult accumulated;
  while (!accumulated.halted) {
    const RunResult part = split.run(7);
    accumulated.cycles += part.cycles;
    accumulated.packets_retired += part.packets_retired;
    accumulated.slots_retired += part.slots_retired;
    accumulated.fetches += part.fetches;
    accumulated.halted = part.halted;
    ASSERT_LT(accumulated.cycles, 100000u) << "did not halt";
  }
  EXPECT_EQ(accumulated.cycles, full.cycles);
  EXPECT_EQ(accumulated.packets_retired, full.packets_retired);
  EXPECT_TRUE(whole.state() == split.state());
}

TEST(Engine, SplitRunsMatchOnCompiledSimulator) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 5, R1
        MVK 3, R2
        MUL.L R3, R1, R2
        HALT
  )");
  CompiledSimulator whole(*tiny().model, SimLevel::kCompiledStatic);
  whole.load(p);
  const RunResult full = whole.run();

  CompiledSimulator split(*tiny().model, SimLevel::kCompiledStatic);
  split.load(p);
  std::uint64_t cycles = 0;
  bool halted = false;
  while (!halted) {
    const RunResult part = split.run(1);
    cycles += part.cycles;
    halted = part.halted;
    ASSERT_LT(cycles, 10000u);
  }
  EXPECT_EQ(cycles, full.cycles);
  EXPECT_TRUE(whole.state() == split.state());
}

TEST(Engine, ReloadRestartsCleanly) {
  const LoadedProgram p = tiny().assemble("MVK 9, R1\nHALT\n");
  CompiledSimulator sim(*tiny().model, SimLevel::kCompiledDynamic);
  sim.load(p);
  const RunResult r1 = sim.run();
  sim.reload(p);
  const RunResult r2 = sim.run();
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.packets_retired, r2.packets_retired);
}

TEST(Engine, InterruptedMidPipelineThenReloaded) {
  const LoadedProgram p = tiny().assemble("MVK 1, R1\nMVK 2, R2\nHALT\n");
  CompiledSimulator sim(*tiny().model, SimLevel::kCompiledStatic);
  sim.load(p);
  sim.run(2);      // stop with instructions in flight
  sim.reload(p);   // must drop them
  const RunResult r = sim.run();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(sim.state().read(tiny().model->resource_by_name("R")->id, 1), 1);
}

TEST(Engine, InterruptDuringStallSquashesInFlightAndRedirectsFetch) {
  // The NOP 8 holds EX for 7 extra cycles; the two MVKs behind it are
  // blocked in ID/IF when the interrupt fires mid-stall. All in-flight
  // packets (the stalled one and the blocked younger ones) must be
  // squashed and fetch redirected to the handler — so R2/R3 are never
  // written, at every simulation level.
  const LoadedProgram p = tiny().assemble(R"(
        MVK 1, R1
        NOP 8
        MVK 7, R2
        MVK 7, R3
loop:   B loop
        NOP 1
irq:    MVK 42, R7
        HALT
  )");
  const std::uint64_t irq = p.symbols.at("irq");
  auto run_level = [&](auto& sim) {
    sim.load(p);
    sim.schedule_interrupt(6, irq);  // NOP stalls EX on cycles 4..11
    const RunResult r = sim.run(100000);
    return std::pair<RunResult, std::string>(r, sim.state().dump_nonzero());
  };
  InterpSimulator interp(*tiny().model);
  CachedInterpSimulator cached(*tiny().model);
  CompiledSimulator dynamic(*tiny().model, SimLevel::kCompiledDynamic);
  CompiledSimulator stat(*tiny().model, SimLevel::kCompiledStatic);
  const auto ri = run_level(interp);
  const auto rc = run_level(cached);
  const auto rd = run_level(dynamic);
  const auto rs = run_level(stat);
  EXPECT_TRUE(ri.first.halted);
  EXPECT_NE(ri.second.find("R[1] = 1"), std::string::npos) << ri.second;
  EXPECT_NE(ri.second.find("R[7] = 42"), std::string::npos) << ri.second;
  EXPECT_EQ(ri.second.find("R[2]"), std::string::npos) << ri.second;
  EXPECT_EQ(ri.second.find("R[3]"), std::string::npos) << ri.second;
  EXPECT_EQ(ri.first, rc.first);
  EXPECT_EQ(ri.first, rd.first);
  EXPECT_EQ(ri.first, rs.first);
  EXPECT_EQ(ri.second, rc.second);
  EXPECT_EQ(ri.second, rd.second);
  EXPECT_EQ(ri.second, rs.second);
}

TEST(Engine, RepeatedRunsKeepPipelineContents) {
  // Splitting a run into 1-cycle quanta must not refetch or re-execute
  // anything: packets stay in their pipeline slots between run() calls,
  // so total fetches match the uninterrupted run exactly.
  const LoadedProgram p = tiny().assemble(R"(
        MVK 3, R1
        MVK 4, R2
        ADD.L R3, R1, R2
        MUL.L R4, R1, R2
        HALT
  )");
  CompiledSimulator whole(*tiny().model, SimLevel::kCompiledStatic);
  whole.load(p);
  const RunResult full = whole.run();

  CompiledSimulator split(*tiny().model, SimLevel::kCompiledStatic);
  split.load(p);
  RunResult accumulated;
  while (!accumulated.halted) {
    const RunResult part = split.run(1);
    accumulated.cycles += part.cycles;
    accumulated.packets_retired += part.packets_retired;
    accumulated.slots_retired += part.slots_retired;
    accumulated.fetches += part.fetches;
    accumulated.halted = part.halted;
    ASSERT_LT(accumulated.cycles, 10000u);
  }
  EXPECT_EQ(accumulated, full);
  EXPECT_TRUE(whole.state() == split.state());
}

TEST(Engine, ResetCancelsPendingInterrupts) {
  // Interrupts are anchored to absolute simulation time; one left pending
  // when the program halts must not leak into the next load/reload (the
  // benchmark-repetition pattern). Two interrupts: the first is consumed,
  // the second is still pending at the reload.
  const LoadedProgram p = tiny().assemble(R"(
        MVK 40, R1
        MVK 1, R3
loop:   BZ R1, done
        SUB.L R1, R1, R3
        B loop
done:   HALT
irq:    MVK 99, R5
        HALT
  )");
  const std::uint64_t irq = p.symbols.at("irq");

  CompiledSimulator fresh(*tiny().model, SimLevel::kCompiledStatic);
  fresh.load(p);
  const RunResult want = fresh.run(100000);
  ASSERT_TRUE(want.halted);
  ASSERT_GT(want.cycles, 50u) << "loop must outlast the pending interrupt";

  CompiledSimulator sim(*tiny().model, SimLevel::kCompiledStatic);
  sim.load(p);
  sim.schedule_interrupt(5, irq);   // fires, handler halts the first run
  sim.schedule_interrupt(50, irq);  // still pending when the run halts
  const RunResult first = sim.run(100000);
  ASSERT_TRUE(first.halted);
  EXPECT_NE(sim.state().dump_nonzero().find("R[5] = 99"), std::string::npos);

  sim.reload(p);  // resets the engine: pending interrupts must be gone
  const RunResult second = sim.run(100000);
  EXPECT_EQ(second, want);
  EXPECT_EQ(sim.state().dump_nonzero().find("R[5]"), std::string::npos)
      << sim.state().dump_nonzero();
  EXPECT_TRUE(fresh.state() == sim.state());
}

TEST(Engine, FetchCountsAndRetireCountsAreConsistent) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 1, R1
        MVK 2, R2
        MVK 3, R3
        HALT
  )");
  InterpSimulator sim(*tiny().model);
  sim.load(p);
  const RunResult r = sim.run();
  EXPECT_TRUE(r.halted);
  EXPECT_GE(r.fetches, r.packets_retired);
  // Everything that retires was fetched, and the three MVKs retire before
  // HALT's stage reaches the end.
  EXPECT_GE(r.fetches, 4u);
}

TEST(Engine, FlushDropsExactlyTheYoungerInstructions) {
  // Two instructions already in the pipe behind the branch are squashed;
  // the instruction stream after the target is unaffected.
  const LoadedProgram p = tiny().assemble(R"(
        MVK 1, R1
        B over
        MVK 1, R2
        MVK 1, R3
over:   MVK 1, R4
        MVK 1, R5
        HALT
  )");
  const auto run = testing::run_all_levels(*tiny().model, p);
  EXPECT_NE(run.state_dump.find("R[1] = 1"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("R[2]"), std::string::npos);
  EXPECT_EQ(run.state_dump.find("R[3]"), std::string::npos);
  EXPECT_NE(run.state_dump.find("R[4] = 1"), std::string::npos);
  EXPECT_NE(run.state_dump.find("R[5] = 1"), std::string::npos);
}

TEST(Engine, BackToBackLoadsUsePipelineRegisterSafely) {
  // Two loads in consecutive cycles share the scalar ld_pipe resource; the
  // oldest-first transition ordering must keep them independent.
  const LoadedProgram p = tiny().assemble(R"(
        MVK 0, R1
        LD R2, R1, 0
        LD R3, R1, 1
        LD R4, R1, 2
        HALT
        .data dmem 0
        .word 111, 222, 333
  )");
  const auto run = testing::run_all_levels(*tiny().model, p);
  EXPECT_NE(run.state_dump.find("R[2] = 111"), std::string::npos)
      << run.state_dump;
  EXPECT_NE(run.state_dump.find("R[3] = 222"), std::string::npos);
  EXPECT_NE(run.state_dump.find("R[4] = 333"), std::string::npos);
}

TEST(Engine, LoadFollowedImmediatelyByUseSeesOldValue) {
  // The ld write-back lands in WB; an ADD right behind it reads the old
  // register value in EX (classic load-delay hazard, exposed).
  const LoadedProgram p = tiny().assemble(R"(
        MVK 0, R1
        MVK 7, R2
        LD R2, R1, 0        ; R2 <- 555 in WB
        ADD.L R3, R2, R2    ; EX same cycle as ld's WB? one stage apart
        HALT
        .data dmem 0
        .word 555
  )");
  const auto run = testing::run_all_levels(*tiny().model, p);
  // ld in EX at cycle t, WB at t+1; ADD in EX at t+1. WB (older) executes
  // first, so the ADD sees the NEW value: documented forwarding-like
  // behavior of the oldest-first ordering.
  EXPECT_NE(run.state_dump.find("R[3] = 1110"), std::string::npos)
      << run.state_dump;
}

}  // namespace
}  // namespace lisasim
