// Model-space fuzzing: generate random machine descriptions (random word
// widths, opcode layouts, operand fields, stage assignments and behaviors)
// and check the generated tool chain end to end — compile, lint, database
// round trip, decode/encode inverse, assembly, and cross-level simulation
// equivalence. This exercises the *generators* over the space of models,
// not just the three hand-written ones.
#include <gtest/gtest.h>

#include <string>

#include "asm/disasm.hpp"
#include "fuzz/progen.hpp"
#include "model/database.hpp"
#include "model/validate.hpp"
#include "sim_test_util.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"

namespace lisasim {
namespace {

using Rng = support::SplitMix64;

struct GeneratedModel {
  std::string source;
  int num_ops = 0;           // random ALU operations
  int opcode_bits = 0;
  unsigned word_bits = 0;
  std::vector<int> op_kinds;  // behavior flavor per op
};

/// A random single-issue ISA: `n` ALU ops with distinct opcodes, two
/// register-operand fields, an immediate field filling the word, plus a
/// fixed HALT. Behaviors mix arithmetic flavors and optional WB-stage
/// write-back through a pipeline register.
GeneratedModel generate_model(std::uint64_t seed) {
  Rng rng(seed);
  GeneratedModel g;
  g.word_bits = static_cast<unsigned>(rng.range(4, 8)) * 4;  // 16..32
  g.num_ops = rng.range(2, 6);
  g.opcode_bits = 4;
  const int reg_bits = rng.range(2, 3);
  const int imm_bits = static_cast<int>(g.word_bits) - g.opcode_bits -
                       2 * reg_bits;

  std::string s;
  s += "MODEL fuzz" + std::to_string(seed) + ";\n";
  s += "RESOURCE {\n  PROGRAM_COUNTER uint32 PC;\n";
  s += "  REGISTER int32 R[" + std::to_string(1 << reg_bits) + "];\n";
  s += "  MEMORY uint32 pmem[256];\n  MEMORY int32 dmem[64];\n";
  s += "  int32 pipe_v;\n";
  s += "  PIPELINE pipe = { FE; DE; EX; WB; };\n}\n";
  s += "FETCH { WORD " + std::to_string(g.word_bits) + "; MEMORY pmem; }\n";

  std::string group = "halt_op";
  bool any_wb = false;
  for (int i = 0; i < g.num_ops; ++i) {
    const int kind = rng.range(0, 4);
    any_wb = any_wb || kind == 4;
    g.op_kinds.push_back(kind);
    const std::string name = "op" + std::to_string(i);
    std::string bits;
    for (int b = g.opcode_bits - 1; b >= 0; --b)
      bits += ((i + 1) >> b) & 1 ? '1' : '0';
    s += "OPERATION " + name + " IN pipe.EX {\n";
    s += "  DECLARE { LABEL ra, rb, imm;" +
         std::string(kind == 4 ? " INSTANCE wb_op;" : "") + " }\n";
    s += "  CODING { 0b" + bits + " ra=0bx[" + std::to_string(reg_bits) +
         "] rb=0bx[" + std::to_string(reg_bits) + "] imm=0bx[" +
         std::to_string(imm_bits) + "] }\n";
    s += "  SYNTAX { \"OP" + std::to_string(i) + " \" ra \", \" rb \", \" "
         "imm }\n";
    switch (kind) {
      case 0:
        s += "  BEHAVIOR { R[ra] = R[rb] + sext(imm, " +
             std::to_string(imm_bits) + "); }\n";
        break;
      case 1:
        s += "  BEHAVIOR { R[ra] = sat(R[ra] * R[rb] + imm, 24); }\n";
        break;
      case 2:
        s += "  BEHAVIOR { dmem[zext(imm, 5)] = R[ra] ^ R[rb]; }\n";
        break;
      case 3:
        s += "  IF (imm == 0) {\n    BEHAVIOR { R[ra] = R[rb]; }\n"
             "  } ELSE {\n    BEHAVIOR { R[ra] = R[rb] << 1; }\n  }\n";
        break;
      case 4:
        s += "  BEHAVIOR { pipe_v = R[rb] - imm; }\n"
             "  ACTIVATION { wb_op }\n";
        break;
    }
    s += "}\n";
    group = name + " || " + group;
  }
  if (any_wb)
    s += "OPERATION wb_op IN pipe.WB {\n  DECLARE { REFERENCE ra; }\n"
         "  BEHAVIOR { R[ra] = pipe_v; }\n}\n";
  std::string halt_pad;
  for (unsigned b = 0; b < g.word_bits - 4; ++b) halt_pad += '0';
  s += "OPERATION halt_op IN pipe.EX {\n  CODING { 0b1111 0b" + halt_pad +
       " }\n  SYNTAX { \"HALT\" }\n  BEHAVIOR { halt(); }\n}\n";
  s += "OPERATION instruction {\n  DECLARE { GROUP insn = { " + group +
       " }; }\n  CODING { insn }\n  SYNTAX { insn }\n}\n";
  g.source = s;
  return g;
}

class ModelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ModelFuzz, GeneratedToolChainIsConsistent) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const GeneratedModel g = generate_model(seed);
  SCOPED_TRACE(g.source);

  // 1. The model compiles and lints clean of warnings.
  auto model = compile_model_source_or_throw(g.source, "fuzz");
  DiagnosticEngine lint;
  validate_model(*model, lint);
  for (const auto& d : lint.diagnostics())
    EXPECT_NE(d.severity, Severity::kWarning) << d.to_string();

  // 2. Data-base round trip is a fixed point.
  const std::string dumped = dump_model(*model);
  DiagnosticEngine diags;
  auto reloaded = load_model(dumped, diags);
  ASSERT_NE(reloaded, nullptr) << diags.render();
  EXPECT_EQ(dump_model(*reloaded), dumped);

  // 3. decode(encode) round trip over random words.
  Decoder decoder(*model);
  Rng rng(seed ^ 0xABCDEF);
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t word =
        rng.next() & low_mask(model->fetch.word_bits);
    DecodedNodePtr node = decoder.decode(word);
    if (node) {
      EXPECT_EQ(decoder.encode(*node), word);
    }
  }

  // 4. The retargetable program generator works for this model too — it
  //    has never seen it, only the SYNTAX/CODING tables. Its random
  //    programs assemble, disassemble word for word, and run identically
  //    at every simulation level.
  fuzz::ProgramGenerator progen(*model);
  EXPECT_GE(progen.instruction_templates(),
            static_cast<std::size_t>(g.num_ops));
  const fuzz::GeneratedProgram prog = progen.generate(seed);
  SCOPED_TRACE(prog.source);
  const LoadedProgram program =
      assemble_or_throw(*model, decoder, prog.source, "fuzz.asm");
  for (std::size_t i = 0; i < program.words.size(); ++i) {
    const std::string dis = disassemble_word(decoder, program.words[i]);
    const LoadedProgram again =
        assemble_or_throw(*model, decoder, dis + "\nHALT\n", "dis.asm");
    EXPECT_EQ(again.words[0], program.words[i]) << dis;
  }
  const auto run = testing::run_all_levels(*model, program, 100000);
  EXPECT_TRUE(run.result.halted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzz, ::testing::Range(1, 25));

}  // namespace
}  // namespace lisasim
