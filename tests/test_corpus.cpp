// Corpus replay: every minimized historical repro program under
// tests/corpus/ runs through all five simulation levels and must agree on
// timing and final state. The corpus grows whenever the differential
// fuzzer (or the batched lockstep differential) minimizes a divergence:
// the shrunk program is checked in here so the bug class stays covered by
// tier-1 CI forever, independent of the seed schedule that found it.
//
// File format: plain assembly with comment headers —
//   ; target: tinydsp | c54x | c62x     (required: built-in model)
//   ; guard: recompile | fallback       (optional: arm the write guards)
// followed by free-form provenance comments and the program itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim_test_util.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

namespace lisasim {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(LISASIM_CORPUS_DIR))
    if (entry.path().extension() == ".asm")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Value of a `; key: value` comment header anywhere in the file.
std::string header_value(const std::string& text, const std::string& key) {
  const std::string marker = "; " + key + ":";
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t at = line.find(marker);
    if (at == std::string::npos) continue;
    std::string value = line.substr(at + marker.size());
    const std::size_t begin = value.find_first_not_of(" \t");
    if (begin == std::string::npos) return "";
    const std::size_t end = value.find_last_not_of(" \t\r");
    return value.substr(begin, end - begin + 1);
  }
  return "";
}

std::string_view model_source_for(const std::string& target) {
  if (target == "tinydsp") return targets::tinydsp_model_source();
  if (target == "c54x") return targets::c54x_model_source();
  if (target == "c62x") return targets::c62x_model_source();
  return {};
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

TEST(Corpus, DirectoryIsNotEmpty) {
  EXPECT_FALSE(corpus_files().empty())
      << "no .asm files under " << LISASIM_CORPUS_DIR;
}

TEST_P(CorpusTest, AllLevelsAgree) {
  const std::string path = GetParam();
  SCOPED_TRACE(path);
  const std::string text = read_file(path);

  const std::string target_name = header_value(text, "target");
  const std::string_view source = model_source_for(target_name);
  ASSERT_FALSE(source.empty())
      << "missing or unknown '; target:' header: '" << target_name << "'";

  GuardPolicy guard = GuardPolicy::kOff;
  const std::string guard_name = header_value(text, "guard");
  if (guard_name == "recompile") guard = GuardPolicy::kRecompile;
  else if (guard_name == "fallback") guard = GuardPolicy::kFallback;
  else ASSERT_TRUE(guard_name.empty()) << "bad '; guard:' header";

  testing::TestTarget target(source, target_name);
  const LoadedProgram program = target.assemble(text);
  // Repro programs are minimized, so they are tiny — but they are not
  // required to halt (divergences often hid in runaway loops); the cap
  // bounds the replay and the cross-level assertions carry the weight.
  const auto run =
      testing::run_all_levels(*target.model, program, 100'000, guard);
  EXPECT_GT(run.result.cycles, 0u);
}

std::string test_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = fs::path(info.param).stem().string();
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(Replay, CorpusTest,
                         ::testing::ValuesIn(corpus_files()), test_name);

}  // namespace
}  // namespace lisasim
