// C++ code-generator tests. Structural checks on the emitted source, plus
// the end-to-end proof: compile the generated simulator with the system
// compiler, run it, and compare cycle count and final state against the
// in-process compiled simulator.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/cppgen.hpp"
#include "sim_test_util.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& tiny() {
  static TestTarget t(targets::tinydsp_model_source(), "tinydsp");
  return t;
}

TEST(CppGen, EmitsExpectedStructure) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 3, R1
        MVK 4, R2
        ADD.L R3, R1, R2
        HALT
  )");
  const std::string source = generate_cpp_simulator(*tiny().model, p);
  EXPECT_NE(source.find("struct State"), std::string::npos);
  EXPECT_NE(source.find("i64 R[16]"), std::string::npos);
  EXPECT_NE(source.find("i64 PC[1]"), std::string::npos);
  EXPECT_NE(source.find("const Row kRows[4]"), std::string::npos);
  EXPECT_NE(source.find("int main()"), std::string::npos);
  // The ADD cell is fully specialized: direct register indices.
  EXPECT_NE(source.find("wr_R(S, INT64_C(3)"), std::string::npos) << source;
}

TEST(CppGen, NoMainWhenEmbedding) {
  const LoadedProgram p = tiny().assemble("HALT\n");
  CppGenOptions options;
  options.emit_main = false;
  const std::string source = generate_cpp_simulator(*tiny().model, p, options);
  EXPECT_EQ(source.find("int main()"), std::string::npos);
}

TEST(CppGen, EmptyProgramThrows) {
  LoadedProgram p;
  EXPECT_THROW(generate_cpp_simulator(*tiny().model, p), SimError);
}

struct CompiledRun {
  std::uint64_t cycles = 0;
  bool halted = false;
  std::string dump;
};

/// Compile + run an emitted simulator via the system compiler.
CompiledRun compile_and_run(const std::string& source, const char* tag) {
  const std::string dir = ::testing::TempDir();
  const std::string cpp = dir + "/gen_" + tag + ".cpp";
  const std::string bin = dir + "/gen_" + tag + ".bin";
  const std::string out = dir + "/gen_" + tag + ".out";
  {
    std::ofstream f(cpp);
    f << source;
  }
  const std::string compile_cmd =
      "c++ -std=c++17 -O1 -o " + bin + " " + cpp + " 2> " + out;
  if (std::system(compile_cmd.c_str()) != 0) {
    std::ifstream log(out);
    std::ostringstream text;
    text << log.rdbuf();
    ADD_FAILURE() << "generated code does not compile:\n" << text.str();
    return {};
  }
  const std::string run_cmd = bin + " > " + out;
  EXPECT_EQ(std::system(run_cmd.c_str()), 0);
  std::ifstream result(out);
  CompiledRun run;
  std::string line;
  while (std::getline(result, line)) {
    if (line.rfind("cycles: ", 0) == 0)
      run.cycles = std::stoull(line.substr(8));
    else if (line.rfind("halted: ", 0) == 0)
      run.halted = line.substr(8) == "1";
    else
      run.dump += line + "\n";
  }
  return run;
}

void expect_generated_matches_library(const Model& model,
                                      const LoadedProgram& program,
                                      const char* tag) {
  CompiledSimulator sim(model, SimLevel::kCompiledDynamic);
  sim.load(program);
  const RunResult expected = sim.run(100'000'000);

  const std::string source = generate_cpp_simulator(model, program);
  const CompiledRun actual = compile_and_run(source, tag);
  EXPECT_EQ(actual.cycles, expected.cycles);
  EXPECT_EQ(actual.halted, expected.halted);
  EXPECT_EQ(actual.dump, sim.state().dump_nonzero());
}

TEST(CppGen, GeneratedSimulatorMatchesLibraryOnTinyDsp) {
  const LoadedProgram p = tiny().assemble(R"(
        MVK 10, R1
        MVK 0, R2
        MVK 1, R3
loop:   BZ R1, done
        ADD.L R2, R2, R1
        SUB.L R1, R1, R3
        LD R4, R3, 2
        ST R2, R3, 3
        B loop
done:   MUL.S R5, R2, R3
        HALT
        .data dmem 3
        .word 777
  )");
  expect_generated_matches_library(*tiny().model, p, "tinydsp");
}

TEST(CppGen, GeneratedSimulatorMatchesLibraryOnC62xWorkload) {
  TestTarget c62x(targets::c62x_model_source(), "c62x");
  const workloads::Workload w = workloads::make_adpcm(48);
  const LoadedProgram p = c62x.assemble(w.asm_source);
  expect_generated_matches_library(*c62x.model, p, "c62x_adpcm");
}

TEST(CppGen, GeneratedSimulatorHandlesPredicationAndPackets) {
  TestTarget c62x(targets::c62x_model_source(), "c62x");
  const LoadedProgram p = c62x.assemble(R"(
        MVK 1, B0
        MVK 5, A1
     || MVK 6, A2
        [B0] MPY A1, A2, A3
        [!B0] MVK 99, A4
        NOP 2
        SADD A3, A3, A5
        HALT
  )");
  expect_generated_matches_library(*c62x.model, p, "c62x_pred");
}

}  // namespace
}  // namespace lisasim
