// The parallel simulation compiler's merge invariant and the table cache:
// sharded builds are bit-identical to the sequential build at any thread
// count, and a cache hit returns the same table object without re-invoking
// the decoder. Runs under -DLISASIM_TSAN=ON via `ctest -L parallel`.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sim_test_util.hpp"
#include "support/thread_pool.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

namespace lisasim {
namespace {

using testing::TestTarget;

TestTarget& c62x() {
  static TestTarget t(targets::c62x_model_source(), "c62x");
  return t;
}

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, ParallelShardsCoverTheRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(101);
  parallel_shards(pool, touched.size(), 7, [&](const Shard& shard) {
    EXPECT_LE(shard.begin, shard.end);
    for (std::size_t i = shard.begin; i < shard.end; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelShardsRethrowsLowestShardError) {
  ThreadPool pool(4);
  try {
    parallel_shards(pool, 100, 8, [](const Shard& shard) {
      if (shard.index == 2) throw SimError("boom-2");
      if (shard.index == 6) throw SimError("boom-6");
    });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    // Deterministic: always the lowest-indexed failing shard, regardless
    // of which worker faulted first.
    EXPECT_STREQ(e.what(), "boom-2");
  }
}

TEST(ThreadPool, SelfSubmittingTasksChainWithoutLosingWaitIdle) {
  // The serve scheduler's pattern: a task re-submits itself from inside a
  // worker until its work is done. wait_idle must count the resubmission
  // before the running task retires, or it would report quiescence with
  // chain links still queued.
  ThreadPool pool(3);
  std::atomic<int> steps{0};
  std::function<void(int)> chain = [&](int remaining) {
    ++steps;
    if (remaining > 1) pool.submit([&chain, remaining] { chain(remaining - 1); });
  };
  for (int lane = 0; lane < 8; ++lane)
    pool.submit([&chain] { chain(200); });
  pool.wait_idle();
  EXPECT_EQ(steps.load(), 8 * 200);
}

TEST(ThreadPool, ZeroAndSingleShardRunInline) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_shards(pool, 0, 4, [&](const Shard&) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_shards(pool, 5, 1, [&](const Shard& shard) {
    ++calls;
    EXPECT_EQ(shard.begin, 0u);
    EXPECT_EQ(shard.end, 5u);
  });
  EXPECT_EQ(calls, 1);
}

// ------------------------------------------------------- parallel build --

class ThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadSweep, TableIsByteIdenticalToSequentialBuild) {
  const workloads::Workload w = workloads::make_gsm(40, 2);
  const LoadedProgram p = c62x().assemble(w.asm_source);
  SimulationCompiler compiler(*c62x().model, *c62x().decoder);

  SimCompileStats seq_stats;
  const SimTable sequential =
      compiler.compile(p, SimLevel::kCompiledStatic, &seq_stats, {1});
  const std::string want = sequential.signature();

  const unsigned threads = GetParam();
  SimCompileStats stats;
  const SimTable parallel =
      compiler.compile(p, SimLevel::kCompiledStatic, &stats, {threads});
  EXPECT_EQ(parallel.signature(), want);
  EXPECT_EQ(stats.instructions, seq_stats.instructions);
  EXPECT_EQ(stats.table_rows, seq_stats.table_rows);
  EXPECT_EQ(stats.microops, seq_stats.microops);
  EXPECT_EQ(stats.threads_used, threads);
  EXPECT_EQ(stats.decode_calls, p.words.size());
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelCompile, DynamicLevelAndInvalidRowsAreDeterministicToo) {
  // A text segment whose tail words do not decode (the repeated HALT words
  // keep the program valid while the trailing garbage rows are poisoned):
  // poisoned rows must carry identical error strings at any thread count.
  std::string source;
  for (int i = 0; i < 40; ++i)
    source += "MVK " + std::to_string(i) + ", R" + std::to_string(i % 8) +
              "\n";
  source += "HALT\n";
  TestTarget tiny(targets::tinydsp_model_source(), "tinydsp");
  const LoadedProgram p = tiny.assemble(source);
  SimulationCompiler compiler(*tiny.model, *tiny.decoder);
  const std::string want =
      compiler.compile(p, SimLevel::kCompiledDynamic, nullptr, {1})
          .signature();
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(
        compiler.compile(p, SimLevel::kCompiledDynamic, nullptr, {threads})
            .signature(),
        want)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------- cache --

TEST(TableCache, HitReturnsSameObjectWithoutRedecoding) {
  const workloads::Workload w = workloads::make_fir(8, 16);
  const LoadedProgram p = c62x().assemble(w.asm_source);
  SimulationCompiler compiler(*c62x().model, *c62x().decoder);
  SimTableCache cache;

  SimCompileStats cold;
  auto first = cache.get_or_compile(compiler, *c62x().model, p,
                                    SimLevel::kCompiledStatic, &cold);
  EXPECT_FALSE(cold.cache_hit);
  // The simulation compiler decodes once per table row — and never again
  // on a hit.
  EXPECT_EQ(cold.decode_calls, p.words.size());
  EXPECT_EQ(cache.stats().misses, 1u);

  SimCompileStats warm;
  auto second = cache.get_or_compile(compiler, *c62x().model, p,
                                     SimLevel::kCompiledStatic, &warm);
  EXPECT_EQ(first.get(), second.get()) << "hit must return the same table";
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.decode_calls, 0u);
  // Translation counters replay from the miss-time build.
  EXPECT_EQ(warm.instructions, cold.instructions);
  EXPECT_EQ(warm.microops, cold.microops);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TableCache, KeyDiscriminatesProgramLevelAndModel) {
  const LoadedProgram fir = c62x().assemble(workloads::make_fir(8, 16).asm_source);
  const LoadedProgram adpcm = c62x().assemble(workloads::make_adpcm(16).asm_source);
  SimulationCompiler compiler(*c62x().model, *c62x().decoder);
  SimTableCache cache;

  auto a = cache.get_or_compile(compiler, *c62x().model, fir,
                                SimLevel::kCompiledStatic);
  auto b = cache.get_or_compile(compiler, *c62x().model, adpcm,
                                SimLevel::kCompiledStatic);
  auto c = cache.get_or_compile(compiler, *c62x().model, fir,
                                SimLevel::kCompiledDynamic);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);

  // Same content hashed from a distinct LoadedProgram object still hits.
  LoadedProgram fir_copy = fir;
  auto d = cache.get_or_compile(compiler, *c62x().model, fir_copy,
                                SimLevel::kCompiledStatic);
  EXPECT_EQ(a.get(), d.get());

  // A one-word change misses.
  LoadedProgram patched = fir;
  patched.words[0] ^= 1;
  EXPECT_NE(SimTableCache::hash_program(patched),
            SimTableCache::hash_program(fir));
}

TEST(TableCache, EvictsLeastRecentlyUsedButKeepsSharedTablesAlive) {
  SimulationCompiler compiler(*c62x().model, *c62x().decoder);
  SimTableCache cache(2);
  const LoadedProgram p1 = c62x().assemble(workloads::make_fir(4, 8).asm_source);
  const LoadedProgram p2 = c62x().assemble(workloads::make_fir(4, 12).asm_source);
  const LoadedProgram p3 = c62x().assemble(workloads::make_fir(4, 16).asm_source);

  auto t1 = cache.get_or_compile(compiler, *c62x().model, p1,
                                 SimLevel::kCompiledDynamic);
  (void)cache.get_or_compile(compiler, *c62x().model, p2,
                             SimLevel::kCompiledDynamic);
  (void)cache.get_or_compile(compiler, *c62x().model, p3,
                             SimLevel::kCompiledDynamic);  // evicts p1
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  // The evicted table object stays valid while someone holds it.
  EXPECT_GT(t1->size(), 0u);

  auto t1_again = cache.get_or_compile(compiler, *c62x().model, p1,
                                       SimLevel::kCompiledDynamic);
  EXPECT_NE(t1.get(), t1_again.get()) << "p1 was evicted, so this recompiles";
  EXPECT_EQ(t1->signature(), t1_again->signature());
}

TEST(TableCache, CachedSimulatorRunsMatchUncached) {
  const LoadedProgram p = c62x().assemble(workloads::make_gsm(40).asm_source);
  CompiledSimulator plain(*c62x().model, SimLevel::kCompiledStatic);
  plain.load(p);
  const RunResult want = plain.run();

  SimTableCache cache;
  CompiledSimulator cached_sim(*c62x().model, SimLevel::kCompiledStatic);
  cached_sim.set_table_cache(&cache);
  cached_sim.set_threads(0);  // hardware threads
  cached_sim.load(p);
  EXPECT_EQ(cached_sim.run(), want);
  cached_sim.load(p);
  EXPECT_EQ(cached_sim.run(), want);
  EXPECT_TRUE(plain.state() == cached_sim.state());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TableCache, SingleFlightElectsExactlyOneCompiler) {
  // K threads miss the same key at once: one compiles, the rest coalesce
  // onto the in-flight build and leave with the identical table object.
  const LoadedProgram p = c62x().assemble(workloads::make_fir(8, 24).asm_source);
  SimTableCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const SimTable>> tables(kThreads);

  ThreadPool pool(kThreads);
  parallel_shards(pool, kThreads, kThreads, [&](const Shard& shard) {
    SimulationCompiler compiler(*c62x().model, *c62x().decoder);
    for (std::size_t i = shard.begin; i < shard.end; ++i)
      tables[i] = cache.get_or_compile(compiler, *c62x().model, p,
                                       SimLevel::kCompiledStatic);
  });

  for (int i = 1; i < kThreads; ++i)
    EXPECT_EQ(tables[0].get(), tables[i].get()) << "thread " << i;
  const SimTableCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "exactly one elected compile";
  // Every non-elected request ends through the hit path (a coalesced
  // waiter re-checks on wake-up and then hits); `coalesced` counts the
  // wait rounds on top, so it is >= 0 but not part of this total.
  EXPECT_EQ(stats.hits, kThreads - 1u);
}

TEST(TableCache, ConcurrentMixedKeyHammer) {
  // TSan fodder (`ctest -L parallel` under -DLISASIM_TSAN=ON): many
  // threads hammering a small cache with overlapping keys, forcing every
  // path — miss, hit, coalesced wait, LRU eviction — to interleave. The
  // assertions are deliberately weak (totals, liveness); the point is the
  // data-race coverage.
  std::vector<LoadedProgram> programs;
  for (int samples : {8, 12, 16, 20})
    programs.push_back(
        c62x().assemble(workloads::make_fir(4, samples).asm_source));
  SimTableCache cache(3);  // smaller than the key population: evictions

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  ThreadPool pool(kThreads);
  std::atomic<std::uint64_t> served{0};
  parallel_shards(pool, kThreads, kThreads, [&](const Shard& shard) {
    SimulationCompiler compiler(*c62x().model, *c62x().decoder);
    for (std::size_t t = shard.begin; t < shard.end; ++t) {
      for (int round = 0; round < kRounds; ++round) {
        const LoadedProgram& p = programs[(t + round) % programs.size()];
        const SimLevel level = (round % 2 == 0) ? SimLevel::kCompiledStatic
                                                : SimLevel::kCompiledDynamic;
        auto table = cache.get_or_compile(compiler, *c62x().model, p, level);
        ASSERT_NE(table, nullptr);
        ASSERT_GT(table->size(), 0u);
        ++served;
      }
    }
  });

  EXPECT_EQ(served.load(), kThreads * kRounds);
  const SimTableCache::Stats stats = cache.stats();
  // >= not ==: a waiter whose elected table was evicted before it woke
  // retries the lookup and is counted a second time.
  EXPECT_GE(stats.hits + stats.misses + stats.coalesced,
            static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_GT(stats.evictions, 0u) << "capacity 3 over 8 keys must evict";
  EXPECT_LE(stats.entries, 3u);
}

}  // namespace
}  // namespace lisasim
