file(REMOVE_RECURSE
  "CMakeFiles/cosim_uart.dir/cosim_uart.cpp.o"
  "CMakeFiles/cosim_uart.dir/cosim_uart.cpp.o.d"
  "cosim_uart"
  "cosim_uart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_uart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
