# Empty compiler generated dependencies file for cosim_uart.
# This may be replaced when dependencies are built.
