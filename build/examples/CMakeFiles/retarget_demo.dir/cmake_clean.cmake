file(REMOVE_RECURSE
  "CMakeFiles/retarget_demo.dir/retarget_demo.cpp.o"
  "CMakeFiles/retarget_demo.dir/retarget_demo.cpp.o.d"
  "retarget_demo"
  "retarget_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retarget_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
