# Empty compiler generated dependencies file for retarget_demo.
# This may be replaced when dependencies are built.
