# Empty dependencies file for dual_target.
# This may be replaced when dependencies are built.
