file(REMOVE_RECURSE
  "CMakeFiles/dual_target.dir/dual_target.cpp.o"
  "CMakeFiles/dual_target.dir/dual_target.cpp.o.d"
  "dual_target"
  "dual_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
