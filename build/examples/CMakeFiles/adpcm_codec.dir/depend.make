# Empty dependencies file for adpcm_codec.
# This may be replaced when dependencies are built.
