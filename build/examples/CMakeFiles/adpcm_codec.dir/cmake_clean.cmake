file(REMOVE_RECURSE
  "CMakeFiles/adpcm_codec.dir/adpcm_codec.cpp.o"
  "CMakeFiles/adpcm_codec.dir/adpcm_codec.cpp.o.d"
  "adpcm_codec"
  "adpcm_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpcm_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
