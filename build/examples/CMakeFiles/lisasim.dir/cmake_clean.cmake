file(REMOVE_RECURSE
  "CMakeFiles/lisasim.dir/lisasim_cli.cpp.o"
  "CMakeFiles/lisasim.dir/lisasim_cli.cpp.o.d"
  "lisasim"
  "lisasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
