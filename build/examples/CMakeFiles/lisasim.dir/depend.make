# Empty dependencies file for lisasim.
# This may be replaced when dependencies are built.
