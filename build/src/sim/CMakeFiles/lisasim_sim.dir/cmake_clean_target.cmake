file(REMOVE_RECURSE
  "liblisasim_sim.a"
)
