file(REMOVE_RECURSE
  "CMakeFiles/lisasim_sim.dir/cached_interp.cpp.o"
  "CMakeFiles/lisasim_sim.dir/cached_interp.cpp.o.d"
  "CMakeFiles/lisasim_sim.dir/interp.cpp.o"
  "CMakeFiles/lisasim_sim.dir/interp.cpp.o.d"
  "CMakeFiles/lisasim_sim.dir/simcompiler.cpp.o"
  "CMakeFiles/lisasim_sim.dir/simcompiler.cpp.o.d"
  "liblisasim_sim.a"
  "liblisasim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
