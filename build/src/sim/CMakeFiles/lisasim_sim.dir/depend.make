# Empty dependencies file for lisasim_sim.
# This may be replaced when dependencies are built.
