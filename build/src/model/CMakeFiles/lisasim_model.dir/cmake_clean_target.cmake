file(REMOVE_RECURSE
  "liblisasim_model.a"
)
