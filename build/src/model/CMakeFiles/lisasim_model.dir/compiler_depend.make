# Empty compiler generated dependencies file for lisasim_model.
# This may be replaced when dependencies are built.
