
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/database.cpp" "src/model/CMakeFiles/lisasim_model.dir/database.cpp.o" "gcc" "src/model/CMakeFiles/lisasim_model.dir/database.cpp.o.d"
  "/root/repo/src/model/sema.cpp" "src/model/CMakeFiles/lisasim_model.dir/sema.cpp.o" "gcc" "src/model/CMakeFiles/lisasim_model.dir/sema.cpp.o.d"
  "/root/repo/src/model/state.cpp" "src/model/CMakeFiles/lisasim_model.dir/state.cpp.o" "gcc" "src/model/CMakeFiles/lisasim_model.dir/state.cpp.o.d"
  "/root/repo/src/model/validate.cpp" "src/model/CMakeFiles/lisasim_model.dir/validate.cpp.o" "gcc" "src/model/CMakeFiles/lisasim_model.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lisa/CMakeFiles/lisasim_lisa.dir/DependInfo.cmake"
  "/root/repo/build/src/behavior/CMakeFiles/lisasim_behavior_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
