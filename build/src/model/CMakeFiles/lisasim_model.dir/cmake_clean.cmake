file(REMOVE_RECURSE
  "CMakeFiles/lisasim_model.dir/database.cpp.o"
  "CMakeFiles/lisasim_model.dir/database.cpp.o.d"
  "CMakeFiles/lisasim_model.dir/sema.cpp.o"
  "CMakeFiles/lisasim_model.dir/sema.cpp.o.d"
  "CMakeFiles/lisasim_model.dir/state.cpp.o"
  "CMakeFiles/lisasim_model.dir/state.cpp.o.d"
  "CMakeFiles/lisasim_model.dir/validate.cpp.o"
  "CMakeFiles/lisasim_model.dir/validate.cpp.o.d"
  "liblisasim_model.a"
  "liblisasim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
