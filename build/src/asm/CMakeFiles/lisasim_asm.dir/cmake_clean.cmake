file(REMOVE_RECURSE
  "CMakeFiles/lisasim_asm.dir/assembler.cpp.o"
  "CMakeFiles/lisasim_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/lisasim_asm.dir/disasm.cpp.o"
  "CMakeFiles/lisasim_asm.dir/disasm.cpp.o.d"
  "CMakeFiles/lisasim_asm.dir/program.cpp.o"
  "CMakeFiles/lisasim_asm.dir/program.cpp.o.d"
  "liblisasim_asm.a"
  "liblisasim_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
