# Empty dependencies file for lisasim_asm.
# This may be replaced when dependencies are built.
