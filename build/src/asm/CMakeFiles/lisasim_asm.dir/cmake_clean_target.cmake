file(REMOVE_RECURSE
  "liblisasim_asm.a"
)
