file(REMOVE_RECURSE
  "liblisasim_targets.a"
)
