file(REMOVE_RECURSE
  "CMakeFiles/lisasim_targets.dir/c54x.cpp.o"
  "CMakeFiles/lisasim_targets.dir/c54x.cpp.o.d"
  "CMakeFiles/lisasim_targets.dir/c62x.cpp.o"
  "CMakeFiles/lisasim_targets.dir/c62x.cpp.o.d"
  "CMakeFiles/lisasim_targets.dir/tinydsp.cpp.o"
  "CMakeFiles/lisasim_targets.dir/tinydsp.cpp.o.d"
  "liblisasim_targets.a"
  "liblisasim_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
