
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/c54x.cpp" "src/targets/CMakeFiles/lisasim_targets.dir/c54x.cpp.o" "gcc" "src/targets/CMakeFiles/lisasim_targets.dir/c54x.cpp.o.d"
  "/root/repo/src/targets/c62x.cpp" "src/targets/CMakeFiles/lisasim_targets.dir/c62x.cpp.o" "gcc" "src/targets/CMakeFiles/lisasim_targets.dir/c62x.cpp.o.d"
  "/root/repo/src/targets/tinydsp.cpp" "src/targets/CMakeFiles/lisasim_targets.dir/tinydsp.cpp.o" "gcc" "src/targets/CMakeFiles/lisasim_targets.dir/tinydsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lisasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
