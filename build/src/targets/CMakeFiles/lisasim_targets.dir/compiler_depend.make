# Empty compiler generated dependencies file for lisasim_targets.
# This may be replaced when dependencies are built.
