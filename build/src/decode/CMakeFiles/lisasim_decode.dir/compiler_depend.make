# Empty compiler generated dependencies file for lisasim_decode.
# This may be replaced when dependencies are built.
