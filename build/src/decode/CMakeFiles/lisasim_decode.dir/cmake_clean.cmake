file(REMOVE_RECURSE
  "CMakeFiles/lisasim_decode.dir/analysis.cpp.o"
  "CMakeFiles/lisasim_decode.dir/analysis.cpp.o.d"
  "CMakeFiles/lisasim_decode.dir/decoder.cpp.o"
  "CMakeFiles/lisasim_decode.dir/decoder.cpp.o.d"
  "liblisasim_decode.a"
  "liblisasim_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
