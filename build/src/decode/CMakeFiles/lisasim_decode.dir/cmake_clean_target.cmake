file(REMOVE_RECURSE
  "liblisasim_decode.a"
)
