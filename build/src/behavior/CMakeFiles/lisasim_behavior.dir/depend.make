# Empty dependencies file for lisasim_behavior.
# This may be replaced when dependencies are built.
