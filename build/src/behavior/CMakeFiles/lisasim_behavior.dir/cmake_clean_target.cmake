file(REMOVE_RECURSE
  "liblisasim_behavior.a"
)
