file(REMOVE_RECURSE
  "CMakeFiles/lisasim_behavior.dir/eval.cpp.o"
  "CMakeFiles/lisasim_behavior.dir/eval.cpp.o.d"
  "CMakeFiles/lisasim_behavior.dir/microops.cpp.o"
  "CMakeFiles/lisasim_behavior.dir/microops.cpp.o.d"
  "CMakeFiles/lisasim_behavior.dir/specialize.cpp.o"
  "CMakeFiles/lisasim_behavior.dir/specialize.cpp.o.d"
  "liblisasim_behavior.a"
  "liblisasim_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
