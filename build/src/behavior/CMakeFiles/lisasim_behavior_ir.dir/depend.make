# Empty dependencies file for lisasim_behavior_ir.
# This may be replaced when dependencies are built.
