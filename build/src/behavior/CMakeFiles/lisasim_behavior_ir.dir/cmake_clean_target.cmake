file(REMOVE_RECURSE
  "liblisasim_behavior_ir.a"
)
