file(REMOVE_RECURSE
  "CMakeFiles/lisasim_behavior_ir.dir/ir.cpp.o"
  "CMakeFiles/lisasim_behavior_ir.dir/ir.cpp.o.d"
  "liblisasim_behavior_ir.a"
  "liblisasim_behavior_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_behavior_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
