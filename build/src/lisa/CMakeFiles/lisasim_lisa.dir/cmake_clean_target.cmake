file(REMOVE_RECURSE
  "liblisasim_lisa.a"
)
