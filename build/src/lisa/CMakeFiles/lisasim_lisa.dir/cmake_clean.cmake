file(REMOVE_RECURSE
  "CMakeFiles/lisasim_lisa.dir/lexer.cpp.o"
  "CMakeFiles/lisasim_lisa.dir/lexer.cpp.o.d"
  "CMakeFiles/lisasim_lisa.dir/parser.cpp.o"
  "CMakeFiles/lisasim_lisa.dir/parser.cpp.o.d"
  "liblisasim_lisa.a"
  "liblisasim_lisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_lisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
