# Empty compiler generated dependencies file for lisasim_lisa.
# This may be replaced when dependencies are built.
