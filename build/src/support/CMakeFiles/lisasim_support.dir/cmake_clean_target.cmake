file(REMOVE_RECURSE
  "liblisasim_support.a"
)
