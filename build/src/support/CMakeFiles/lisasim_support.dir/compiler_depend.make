# Empty compiler generated dependencies file for lisasim_support.
# This may be replaced when dependencies are built.
