file(REMOVE_RECURSE
  "CMakeFiles/lisasim_support.dir/diag.cpp.o"
  "CMakeFiles/lisasim_support.dir/diag.cpp.o.d"
  "CMakeFiles/lisasim_support.dir/value.cpp.o"
  "CMakeFiles/lisasim_support.dir/value.cpp.o.d"
  "liblisasim_support.a"
  "liblisasim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
