file(REMOVE_RECURSE
  "liblisasim_codegen.a"
)
