# Empty dependencies file for lisasim_codegen.
# This may be replaced when dependencies are built.
