file(REMOVE_RECURSE
  "CMakeFiles/lisasim_codegen.dir/cppgen.cpp.o"
  "CMakeFiles/lisasim_codegen.dir/cppgen.cpp.o.d"
  "liblisasim_codegen.a"
  "liblisasim_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
