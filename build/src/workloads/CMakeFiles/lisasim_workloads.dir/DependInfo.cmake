
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adpcm.cpp" "src/workloads/CMakeFiles/lisasim_workloads.dir/adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/lisasim_workloads.dir/adpcm.cpp.o.d"
  "/root/repo/src/workloads/fir.cpp" "src/workloads/CMakeFiles/lisasim_workloads.dir/fir.cpp.o" "gcc" "src/workloads/CMakeFiles/lisasim_workloads.dir/fir.cpp.o.d"
  "/root/repo/src/workloads/gsm.cpp" "src/workloads/CMakeFiles/lisasim_workloads.dir/gsm.cpp.o" "gcc" "src/workloads/CMakeFiles/lisasim_workloads.dir/gsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lisasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
