# Empty dependencies file for lisasim_workloads.
# This may be replaced when dependencies are built.
