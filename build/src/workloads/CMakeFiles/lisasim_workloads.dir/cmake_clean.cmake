file(REMOVE_RECURSE
  "CMakeFiles/lisasim_workloads.dir/adpcm.cpp.o"
  "CMakeFiles/lisasim_workloads.dir/adpcm.cpp.o.d"
  "CMakeFiles/lisasim_workloads.dir/fir.cpp.o"
  "CMakeFiles/lisasim_workloads.dir/fir.cpp.o.d"
  "CMakeFiles/lisasim_workloads.dir/gsm.cpp.o"
  "CMakeFiles/lisasim_workloads.dir/gsm.cpp.o.d"
  "liblisasim_workloads.a"
  "liblisasim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisasim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
