file(REMOVE_RECURSE
  "liblisasim_workloads.a"
)
