# Empty compiler generated dependencies file for test_specialize.
# This may be replaced when dependencies are built.
