file(REMOVE_RECURSE
  "CMakeFiles/test_specialize.dir/test_specialize.cpp.o"
  "CMakeFiles/test_specialize.dir/test_specialize.cpp.o.d"
  "test_specialize"
  "test_specialize.pdb"
  "test_specialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
