# Empty dependencies file for test_microops.
# This may be replaced when dependencies are built.
