file(REMOVE_RECURSE
  "CMakeFiles/test_microops.dir/test_microops.cpp.o"
  "CMakeFiles/test_microops.dir/test_microops.cpp.o.d"
  "test_microops"
  "test_microops.pdb"
  "test_microops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
