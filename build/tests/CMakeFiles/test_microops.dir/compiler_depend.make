# Empty compiler generated dependencies file for test_microops.
# This may be replaced when dependencies are built.
