# Empty compiler generated dependencies file for test_c54x.
# This may be replaced when dependencies are built.
