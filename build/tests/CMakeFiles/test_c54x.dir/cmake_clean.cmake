file(REMOVE_RECURSE
  "CMakeFiles/test_c54x.dir/test_c54x.cpp.o"
  "CMakeFiles/test_c54x.dir/test_c54x.cpp.o.d"
  "test_c54x"
  "test_c54x.pdb"
  "test_c54x[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c54x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
