file(REMOVE_RECURSE
  "CMakeFiles/test_tinydsp.dir/test_tinydsp.cpp.o"
  "CMakeFiles/test_tinydsp.dir/test_tinydsp.cpp.o.d"
  "test_tinydsp"
  "test_tinydsp.pdb"
  "test_tinydsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tinydsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
