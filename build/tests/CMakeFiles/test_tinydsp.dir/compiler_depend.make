# Empty compiler generated dependencies file for test_tinydsp.
# This may be replaced when dependencies are built.
