file(REMOVE_RECURSE
  "CMakeFiles/test_c62x.dir/test_c62x.cpp.o"
  "CMakeFiles/test_c62x.dir/test_c62x.cpp.o.d"
  "test_c62x"
  "test_c62x.pdb"
  "test_c62x[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c62x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
