# Empty compiler generated dependencies file for test_c62x.
# This may be replaced when dependencies are built.
