file(REMOVE_RECURSE
  "CMakeFiles/bench_model_translation.dir/bench_model_translation.cpp.o"
  "CMakeFiles/bench_model_translation.dir/bench_model_translation.cpp.o.d"
  "bench_model_translation"
  "bench_model_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
