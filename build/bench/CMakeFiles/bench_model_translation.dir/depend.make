# Empty dependencies file for bench_model_translation.
# This may be replaced when dependencies are built.
