file(REMOVE_RECURSE
  "CMakeFiles/bench_cross_target.dir/bench_cross_target.cpp.o"
  "CMakeFiles/bench_cross_target.dir/bench_cross_target.cpp.o.d"
  "bench_cross_target"
  "bench_cross_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cross_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
