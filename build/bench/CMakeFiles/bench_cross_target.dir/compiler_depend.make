# Empty compiler generated dependencies file for bench_cross_target.
# This may be replaced when dependencies are built.
