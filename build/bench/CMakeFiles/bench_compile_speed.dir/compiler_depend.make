# Empty compiler generated dependencies file for bench_compile_speed.
# This may be replaced when dependencies are built.
