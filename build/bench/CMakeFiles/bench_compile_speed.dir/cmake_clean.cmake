file(REMOVE_RECURSE
  "CMakeFiles/bench_compile_speed.dir/bench_compile_speed.cpp.o"
  "CMakeFiles/bench_compile_speed.dir/bench_compile_speed.cpp.o.d"
  "bench_compile_speed"
  "bench_compile_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compile_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
