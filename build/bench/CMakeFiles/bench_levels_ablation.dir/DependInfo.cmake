
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_levels_ablation.cpp" "bench/CMakeFiles/bench_levels_ablation.dir/bench_levels_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_levels_ablation.dir/bench_levels_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lisasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/targets/CMakeFiles/lisasim_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lisasim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/behavior/CMakeFiles/lisasim_behavior.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/lisasim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/decode/CMakeFiles/lisasim_decode.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lisasim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lisa/CMakeFiles/lisasim_lisa.dir/DependInfo.cmake"
  "/root/repo/build/src/behavior/CMakeFiles/lisasim_behavior_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
